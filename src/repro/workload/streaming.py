"""Streaming workload ingestion: lazy readers and bounded-memory feeds.

Eager loading (:func:`repro.workload.archive.load_swf_workload`,
:meth:`CWFWorkloadGenerator.generate`) materializes every job before
the simulation starts — fine at the paper's ``N_J = 500``, prohibitive
at archive scale (a multi-year SWF log holds 10\\ :sup:`5`–10\\
:sup:`6` jobs).  This module provides the lazy counterparts
(docs/scaling.md):

- :func:`iter_jobs` — generator-based SWF/CWF job reader with a
  *bounded lookahead* reorder buffer, yielding jobs in submission
  order while holding at most ``lookahead`` jobs in memory;
- :func:`stream_swf_workload` — the streaming analogue of
  :func:`~repro.workload.archive.load_swf_workload` (same filtering
  and granularity snapping, applied per record) returning a
  :class:`JobStream`;
- :func:`stream_cwf_workload` — CWF submissions *and* ECCs as one
  time-ordered item stream;
- :class:`SyntheticWorkloadStream` — the streaming twin of
  :class:`~repro.workload.generator.CWFWorkloadGenerator`: identical
  RNG consumption, so the first ``n`` streamed jobs are *bitwise
  identical* to an eager ``generate()`` with the same seed (the
  streaming-vs-eager property tests pin this).

A :class:`JobStream` is single-use: the runner consumes it once,
pulling items as virtual time advances, so peak memory is set by the
scheduler's queues — not the workload length.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Tuple, Union

import numpy as np

from repro.workload.cwf import CWFParseError, iter_cwf
from repro.workload.ecc import ECC
from repro.workload.errors import WorkloadFormatError
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig
from repro.workload.job import Job
from repro.workload.swf import iter_swf

#: Default reorder-buffer depth for :func:`iter_jobs`.  Archive logs
#: are submission-sorted apart from occasional local swaps; 512 jobs
#: of slack absorbs every known case while keeping memory trivial.
DEFAULT_LOOKAHEAD = 512

#: One streamed item: a job submission or an elastic control command.
StreamItem = Union[Job, ECC]


class StreamOrderError(WorkloadFormatError):
    """A record was more out-of-order than the lookahead can absorb.

    Raised when a job's submission time precedes one already yielded —
    i.e. the disorder in the source exceeds the reorder buffer.  Retry
    with a larger ``lookahead`` or repair the log.
    """


# ----------------------------------------------------------------------
# Bounded-lookahead reordering
# ----------------------------------------------------------------------
def _reorder(
    jobs: Iterable[Job], lookahead: Optional[int], source: str
) -> Iterator[Job]:
    """Yield ``jobs`` in ``(submit, job_id)`` order via a bounded heap.

    Holds at most ``lookahead`` jobs; ``None`` disables reordering
    entirely (trust the source order).  A job arriving with a submit
    time earlier than one already yielded raises
    :class:`StreamOrderError` — silently reordering it is impossible
    without unbounded memory.
    """
    if lookahead is None:
        yield from jobs
        return
    if lookahead < 1:
        raise ValueError(f"lookahead must be positive, got {lookahead}")
    heap: list[Tuple[float, int, Job]] = []
    horizon: Optional[Tuple[float, int]] = None
    for job in jobs:
        key = (job.submit, job.job_id)
        if horizon is not None and key < horizon:
            raise StreamOrderError(
                f"job {job.job_id} (submit={job.submit:g}) arrives "
                f"{horizon[0] - job.submit:g}s before already-yielded work; "
                f"disorder exceeds lookahead={lookahead}",
                source=source,
            )
        heapq.heappush(heap, (job.submit, job.job_id, job))
        if len(heap) > lookahead:
            submit, job_id, head = heapq.heappop(heap)
            horizon = (submit, job_id)
            yield head
    while heap:
        yield heapq.heappop(heap)[2]


def iter_jobs(
    source: Union[str, Path],
    *,
    fmt: Optional[str] = None,
    strict: bool = True,
    lookahead: Optional[int] = DEFAULT_LOOKAHEAD,
) -> Iterator[Job]:
    """Lazily yield jobs from an SWF or CWF file in submission order.

    The streaming counterpart of ``[r.to_job() for r in read_swf(...)]``:
    memory is bounded by ``lookahead`` (the reorder buffer), not the
    file length.  CWF ECC lines are skipped — use
    :func:`stream_cwf_workload` when commands matter.

    Args:
        source: ``.swf``/``.cwf`` path (``.gz`` transparently ok).
        fmt: ``"swf"`` or ``"cwf"``; inferred from the suffix when
            omitted.
        strict: Malformed lines raise (default) or are skipped with a
            warning, exactly as in the eager readers.  Records that
            parse but make no usable job (no runtime/processors) are
            treated the same way.
        lookahead: Reorder-buffer depth; ``None`` trusts file order.

    Raises:
        StreamOrderError: when disorder exceeds ``lookahead``.
        ValueError: for an unrecognized format.
    """
    name = str(source)
    kind = fmt or _infer_format(name)
    if kind == "swf":
        records = iter_swf(source, strict=strict)
        jobs = _records_to_jobs(records, strict=strict, source=name)
    elif kind == "cwf":
        records = iter_cwf(source, strict=strict)
        jobs = _records_to_jobs(
            (r for r in records if r.is_submission), strict=strict, source=name
        )
    else:
        raise ValueError(f"unrecognized workload format {kind!r} for {name}")
    return _reorder(jobs, lookahead, name)


def _infer_format(name: str) -> str:
    stem = name[:-3] if name.endswith(".gz") else name
    suffix = Path(stem).suffix.lower().lstrip(".")
    if suffix in ("swf", "cwf"):
        return suffix
    raise ValueError(
        f"cannot infer workload format from {name!r}; pass fmt='swf' or 'cwf'"
    )


def _records_to_jobs(records, *, strict: bool, source: str) -> Iterator[Job]:
    """Map parsed records to jobs, honouring strict/skip semantics."""
    import warnings

    for record in records:
        try:
            yield record.to_job()
        except ValueError as exc:  # SWF/CWFParseError and Job-constructor errors
            if strict:
                raise
            warnings.warn(
                f"{source}: skipping unusable record for job {record.job_id}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )


# ----------------------------------------------------------------------
# Job streams
# ----------------------------------------------------------------------
@dataclass
class JobStream:
    """A single-pass, time-ordered workload feed for the runner.

    ``items`` yields :class:`~repro.workload.job.Job` submissions and
    :class:`~repro.workload.ecc.ECC` commands with non-decreasing event
    times (a job's time is its ``submit``, an ECC's its
    ``issue_time``); every ECC follows its job's submission.  The
    runner (``SimulationRunner`` in streaming mode) schedules a small
    window of upcoming items and pulls one more each time an item
    fires, so the event heap and job population stay bounded by the
    live set.

    ``n_jobs_hint`` is advisory (progress displays); streams of
    unknown length leave it ``None``.

    ``spec`` — when present — is the stream's *recipe*: a small
    picklable value object whose ``build()`` returns a fresh,
    identical stream.  Streams themselves are single-use generators
    and cannot be pickled; the spec is what a checkpoint persists so a
    resumed run can rebuild the iterator and fast-forward to the
    recorded position (:mod:`repro.durable.checkpoint`).  All three
    stream constructors in this module attach one; hand-rolled streams
    without a spec simply cannot be checkpointed mid-stream.
    """

    items: Iterable[StreamItem]
    machine_size: int = 320
    granularity: int = 1
    description: str = ""
    n_jobs_hint: Optional[int] = None
    spec: Optional["StreamSpec"] = None

    def __iter__(self) -> Iterator[StreamItem]:
        return iter(self.items)


class StreamSpec:
    """Base class for rebuildable stream recipes (checkpoint/resume).

    Subclasses are small frozen dataclasses of primitives — picklable
    by construction — whose :meth:`build` deterministically recreates
    the same :class:`JobStream` item-for-item.
    """

    def build(self) -> JobStream:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class SWFStreamSpec(StreamSpec):
    """Recipe for :func:`stream_swf_workload` (same arguments)."""

    path: str
    machine_size: Optional[int] = None
    granularity: int = 1
    max_jobs: Optional[int] = None
    rebase_time: bool = True
    strict: bool = True
    lookahead: Optional[int] = DEFAULT_LOOKAHEAD

    def build(self) -> JobStream:
        return stream_swf_workload(
            self.path,
            machine_size=self.machine_size,
            granularity=self.granularity,
            max_jobs=self.max_jobs,
            rebase_time=self.rebase_time,
            strict=self.strict,
            lookahead=self.lookahead,
        )


@dataclass(frozen=True)
class CWFStreamSpec(StreamSpec):
    """Recipe for :func:`stream_cwf_workload` (same arguments)."""

    path: str
    machine_size: int = 320
    granularity: int = 1
    strict: bool = True

    def build(self) -> JobStream:
        return stream_cwf_workload(
            self.path,
            machine_size=self.machine_size,
            granularity=self.granularity,
            strict=self.strict,
        )


@dataclass(frozen=True)
class SyntheticStreamSpec(StreamSpec):
    """Recipe for :meth:`SyntheticWorkloadStream.stream`."""

    config: "GeneratorConfig"
    seed: int = 0

    def build(self) -> JobStream:
        return SyntheticWorkloadStream(self.config, self.seed).stream()


def stream_swf_workload(
    path: Union[str, Path],
    machine_size: Optional[int] = None,
    granularity: int = 1,
    max_jobs: Optional[int] = None,
    rebase_time: bool = True,
    strict: bool = True,
    lookahead: Optional[int] = DEFAULT_LOOKAHEAD,
) -> JobStream:
    """Streaming analogue of :func:`~repro.workload.archive.load_swf_workload`.

    Applies the same per-record adjustments — granularity snapping
    (sizes rounded *up*), oversized-job and unusable-record skipping,
    optional time rebasing to the first kept submission — lazily, so a
    multi-year log never materializes.  There is no
    :class:`~repro.workload.archive.LoadReport` (it would require the
    full scan the streaming path exists to avoid); pass the same file
    to the eager loader when an audit is needed.

    Raises:
        ValueError: when no machine size is available.
    """
    from repro.workload.archive import read_header_max_procs

    size = machine_size or read_header_max_procs(path)
    if size is None:
        raise ValueError(f"{path}: no MaxProcs header; pass machine_size explicitly")
    if size % granularity != 0:
        raise ValueError(
            f"machine size {size} is not a multiple of granularity {granularity}"
        )

    def generate() -> Iterator[Job]:
        kept = 0
        origin: Optional[float] = None
        for job in iter_jobs(path, fmt="swf", strict=strict, lookahead=lookahead):
            if max_jobs is not None and kept >= max_jobs:
                return
            num = job.num
            if num % granularity != 0:
                num = ((num + granularity - 1) // granularity) * granularity
            if num > size:
                continue
            if rebase_time and origin is None:
                origin = job.submit
            shift = origin or 0.0
            if num != job.num or shift:
                job = Job(
                    job_id=job.job_id,
                    submit=job.submit - shift,
                    num=num,
                    estimate=job.original_estimate,
                    actual=job.actual,
                    kind=job.kind,
                    cancel_at=None if job.cancel_at is None else job.cancel_at - shift,
                )
            kept += 1
            yield job

    return JobStream(
        items=generate(),
        machine_size=size,
        granularity=granularity,
        description=f"SWF stream {Path(path).name}",
        n_jobs_hint=max_jobs,
        spec=SWFStreamSpec(
            path=str(path),
            machine_size=machine_size,
            granularity=granularity,
            max_jobs=max_jobs,
            rebase_time=rebase_time,
            strict=strict,
            lookahead=lookahead,
        ),
    )


def stream_cwf_workload(
    path: Union[str, Path],
    machine_size: int = 320,
    granularity: int = 1,
    strict: bool = True,
) -> JobStream:
    """Stream a CWF file as time-ordered submissions + ECCs.

    The streaming analogue of
    :func:`~repro.workload.cwf.parse_cwf_workload`: items come out in
    file order (CWF files interleave commands at their issue times),
    and an ECC referencing a job id that has not been submitted yet
    raises :class:`~repro.workload.cwf.CWFParseError` — with the
    memory-relevant difference that only the *live* id set of recently
    seen submissions is conceptually needed; this reader keeps the full
    id set (ints only, ~40 bytes/job), which is still 100x lighter
    than the job objects the eager path retains.
    """

    def generate() -> Iterator[StreamItem]:
        import warnings

        seen: set[int] = set()
        last_time = float("-inf")
        for record in iter_cwf(path, strict=strict):
            try:
                if record.is_submission:
                    item: StreamItem = record.to_job()
                    time = item.submit
                    if item.job_id in seen:
                        raise ValueError(f"duplicate submission for job {item.job_id}")
                    seen.add(item.job_id)
                else:
                    if record.job_id not in seen:
                        raise ValueError(
                            f"ECC references unknown job {record.job_id} "
                            "(submissions must precede their ECCs)"
                        )
                    item = record.to_ecc()
                    time = item.issue_time
                if time < last_time:
                    raise ValueError(
                        f"record for job {record.job_id} at t={time:g} is out of "
                        f"order (stream is at t={last_time:g}); streaming CWF "
                        "requires time-sorted files"
                    )
            except ValueError as exc:
                error = CWFParseError(str(exc), source=str(path))
                if strict:
                    raise error from exc
                warnings.warn(
                    f"skipping malformed record: {error}", RuntimeWarning, stacklevel=2
                )
                continue
            last_time = time
            yield item

    return JobStream(
        items=generate(),
        machine_size=machine_size,
        granularity=granularity,
        description=f"CWF stream {Path(path).name}",
        spec=CWFStreamSpec(
            path=str(path),
            machine_size=machine_size,
            granularity=granularity,
            strict=strict,
        ),
    )


# ----------------------------------------------------------------------
# Streaming synthetic generation
# ----------------------------------------------------------------------
@dataclass
class SyntheticWorkloadStream:
    """Streaming twin of :class:`~repro.workload.generator.CWFWorkloadGenerator`.

    Draws jobs one at a time with exactly the RNG consumption pattern
    of the eager ``generate()`` — substreams spawned in the same
    order, arrivals advanced through the same quota state machine —
    so with equal ``(config, seed)`` the streamed jobs and ECCs are
    bitwise identical to the eager workload's (sorted) lists.  ECCs
    are issued after their job's submission with unbounded exponential
    offsets, so a small heap reorders them into the arrival timeline;
    its size is bounded by the number of commands still pending at any
    instant (observed: a few dozen at ``P_E = 0.2``), not by
    ``n_jobs``.
    """

    config: GeneratorConfig
    seed: int = 0

    def stream(self) -> JobStream:
        """One fresh single-pass :class:`JobStream` over the workload."""
        cfg = self.config
        return JobStream(
            items=self._generate(),
            machine_size=cfg.machine_size,
            granularity=cfg.size.granularity,
            description=(
                f"CWF synthetic stream: N={cfg.n_jobs} P_S={cfg.size.p_small:g} "
                f"P_D={cfg.p_dedicated:g} P_E={cfg.p_extend:g} "
                f"P_R={cfg.p_reduce:g} beta_arr={cfg.lublin.beta_arr:g}"
            ),
            n_jobs_hint=cfg.n_jobs,
            spec=SyntheticStreamSpec(config=cfg, seed=self.seed),
        )

    # ------------------------------------------------------------------
    def _generate(self) -> Iterator[StreamItem]:
        cfg = self.config
        generator = CWFWorkloadGenerator(cfg)
        rng = np.random.default_rng(self.seed)
        arrival_rng, attr_rng, ecc_rng = rng.spawn(3)
        pending: list[Tuple[float, int, int, ECC]] = []
        tie = 0
        for index, arrival in enumerate(
            _iter_arrivals(generator._lublin, cfg.n_jobs, arrival_rng), start=1
        ):
            job = generator._generate_job(index, arrival, attr_rng)
            commands = generator._generate_eccs(job, ecc_rng)
            # Commands sort by (issue_time, job_id) like the eager
            # Workload does.  Release earlier jobs' commands due by this
            # submission *before* the job, but push the job's own ones
            # only *after* yielding it: an ECC rounded onto its job's
            # submit instant must still follow the submission.
            while pending and pending[0][0] <= job.submit:
                yield heapq.heappop(pending)[3]
            yield job
            for ecc in commands:
                tie += 1
                heapq.heappush(pending, (ecc.issue_time, ecc.job_id, tie, ecc))
        while pending:
            yield heapq.heappop(pending)[3]


def _iter_arrivals(
    lublin, count: int, rng: np.random.Generator
) -> Iterator[float]:
    """Incremental replica of :meth:`LublinModel.sample_arrivals`.

    Same substream spawns, same draw order, same quota/spill logic —
    one arrival at a time instead of a materialized list.  Kept next
    to the streaming generator (its only caller); the eager method is
    the reference and a property test pins their equality.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    from repro.workload.lublin import SECONDS_PER_HOUR

    gap_rng, quota_rng = rng.spawn(2)
    now = 0.0
    interval_index = 0
    quota = lublin._interval_quota(quota_rng)
    admitted = 0
    produced = 0
    while produced < count:
        now += lublin.sample_gap(now, gap_rng)
        if lublin.config.quota_enabled:
            idx = int(now // SECONDS_PER_HOUR)
            if idx > interval_index:
                interval_index = idx
                quota = lublin._interval_quota(quota_rng)
                admitted = 0
            if admitted >= quota:
                now = (interval_index + 1) * SECONDS_PER_HOUR
                interval_index += 1
                quota = lublin._interval_quota(quota_rng)
                admitted = 0
            admitted += 1
        produced += 1
        yield now


__all__ = [
    "CWFStreamSpec",
    "DEFAULT_LOOKAHEAD",
    "JobStream",
    "StreamItem",
    "StreamOrderError",
    "StreamSpec",
    "SWFStreamSpec",
    "SyntheticStreamSpec",
    "SyntheticWorkloadStream",
    "iter_jobs",
    "stream_cwf_workload",
    "stream_swf_workload",
]
