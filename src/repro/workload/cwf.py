"""Cloud Workload Format (CWF) — the paper's SWF extension (Figure 4).

CWF appends three fields to the 18 SWF fields:

====  ==========================  =======================================
 #    Name                        Notes
====  ==========================  =======================================
 19   requested start time        dedicated/interactive jobs; −1 batch
 20   request type                S / ET / RT / EP / RP
 21   extension/reduction amount  seconds (ET/RT) or processors (EP/RP)
====  ==========================  =======================================

A CWF file interleaves submissions (type ``S``) with Elastic Control
Commands referencing earlier job ids: an ECC line reuses the job id and
carries the command in fields 20–21 with the *issue time* in field 2.
``parse_cwf_workload`` splits a file into jobs and ECC lists ready for
simulation.

Optional malleability extension (this repo; docs/malleability.md):
fields 22–24 on a submission line carry the job's ``min/pref/max``
processor range, mirroring SWF's optional fields 19–21.  Absent (or
``-1``) means rigid; legacy 21-field files parse unchanged and rigid
records serialize without the extra columns.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, TextIO, Tuple, Union

from repro.workload.ecc import ECC, ECCKind
from repro.workload.errors import numbered_records, source_name
from repro.workload.job import Job, JobKind
from repro.workload.swf import SWFParseError, SWFRecord, UNKNOWN, _open_text


class CWFParseError(SWFParseError):
    """Raised when a line cannot be parsed as a CWF record."""


@dataclass
class CWFRecord(SWFRecord):
    """One CWF line: SWF fields plus the elasticity extension."""

    requested_start: float = UNKNOWN
    request_type: ECCKind = ECCKind.SUBMIT
    amount: float = UNKNOWN

    EXTENDED_FIELD_COUNT = 21
    #: With the optional malleability range (fields 22–24) appended.
    MALLEABLE_FIELD_COUNT = 24

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, line: str) -> "CWFRecord":
        """Parse a CWF line (21 fields, plus an optional malleability
        range in fields 22–24; shorter lines padded like SWF)."""
        tokens = line.split()
        if not tokens:
            raise CWFParseError("empty line")
        if len(tokens) > cls.MALLEABLE_FIELD_COUNT:
            raise CWFParseError(
                f"expected at most {cls.MALLEABLE_FIELD_COUNT} fields, got {len(tokens)}"
            )
        base_tokens = tokens[: len(SWFRecord.FIELD_NAMES)]
        extension = tokens[len(SWFRecord.FIELD_NAMES) : cls.EXTENDED_FIELD_COUNT]
        range_tokens = tokens[cls.EXTENDED_FIELD_COUNT :]
        base = SWFRecord.parse(" ".join(base_tokens))
        record = cls(**{name: getattr(base, name) for name in SWFRecord.FIELD_NAMES})
        if len(extension) >= 1:
            try:
                record.requested_start = float(extension[0])
            except ValueError as exc:
                raise CWFParseError(
                    f"field requested_start: non-numeric {extension[0]!r}"
                ) from exc
        if len(extension) >= 2:
            try:
                record.request_type = ECCKind(extension[1].upper())
            except ValueError as exc:
                raise CWFParseError(
                    f"field request_type: unknown code {extension[1]!r}"
                ) from exc
        if len(extension) >= 3:
            try:
                record.amount = float(extension[2])
            except ValueError as exc:
                raise CWFParseError(f"field amount: non-numeric {extension[2]!r}") from exc
        for name, token in zip(cls.RANGE_FIELD_NAMES, range_tokens):
            try:
                setattr(record, name, int(float(token)))
            except ValueError as exc:
                raise CWFParseError(f"field {name}: non-numeric token {token!r}") from exc
        return record

    def to_line(self) -> str:
        """Serialize to one canonical CWF line.

        The malleability columns (fields 22–24) are appended only when
        set, so rigid records keep the 21-field Figure 4 layout.
        """
        start = (
            str(int(self.requested_start))
            if float(self.requested_start).is_integer()
            else f"{self.requested_start:.2f}"
        )
        amount = (
            str(int(self.amount))
            if float(self.amount).is_integer()
            else f"{self.amount:.2f}"
        )
        # SWFRecord.to_line would append the range straight after field
        # 18; CWF puts it after the elasticity extension instead.
        base = SWFRecord(
            **{name: getattr(self, name) for name in SWFRecord.FIELD_NAMES}
        ).to_line()
        line = f"{base} {start} {self.request_type.value} {amount}"
        if self.has_malleable_range:
            line += " " + " ".join(
                str(int(getattr(self, name))) for name in self.RANGE_FIELD_NAMES
            )
        return line

    # ------------------------------------------------------------------
    @property
    def is_submission(self) -> bool:
        """Whether this line introduces a new job."""
        return self.request_type is ECCKind.SUBMIT

    def to_job(self) -> Job:
        """Convert a submission record to a :class:`Job`.

        Raises:
            CWFParseError: when called on an ECC record.
        """
        if not self.is_submission:
            raise CWFParseError(
                f"record for job {self.job_id} is an ECC ({self.request_type.value}), "
                "not a submission"
            )
        base = super().to_job()
        if self.requested_start is not None and self.requested_start >= 0:
            return Job(
                job_id=base.job_id,
                submit=base.submit,
                num=base.num,
                estimate=base.estimate,
                actual=base.actual,
                kind=JobKind.DEDICATED,
                requested_start=float(self.requested_start),
                min_procs=base.min_procs,
                pref_procs=base.pref_procs,
                max_procs=base.max_procs,
            )
        return base

    def to_ecc(self) -> ECC:
        """Convert an ECC record to an :class:`ECC`.

        Raises:
            CWFParseError: when called on a submission record or when
                the amount is missing/invalid.
        """
        if self.is_submission:
            raise CWFParseError(f"record for job {self.job_id} is a submission, not an ECC")
        if self.amount <= 0:
            raise CWFParseError(
                f"ECC for job {self.job_id}: missing or non-positive amount {self.amount}"
            )
        return ECC(
            job_id=self.job_id,
            issue_time=self.submit,
            kind=self.request_type,
            amount=self.amount,
        )

    @classmethod
    def from_job(cls, job: Job) -> "CWFRecord":
        """Build a submission record from a job."""
        base = SWFRecord.from_job(job)
        record = cls(**{name: getattr(base, name) for name in SWFRecord.FIELD_NAMES})
        record.requested_start = (
            job.requested_start if job.requested_start is not None else UNKNOWN
        )
        record.request_type = ECCKind.SUBMIT
        record.amount = UNKNOWN
        record.min_procs = base.min_procs
        record.pref_procs = base.pref_procs
        record.max_procs = base.max_procs
        return record

    @classmethod
    def from_ecc(cls, ecc: ECC) -> "CWFRecord":
        """Build an ECC record referencing a previously submitted job."""
        record = cls(job_id=ecc.job_id, submit=ecc.issue_time)
        record.request_type = ecc.kind
        record.amount = ecc.amount
        return record


# ----------------------------------------------------------------------
# File I/O
# ----------------------------------------------------------------------
def iter_cwf(
    source: Union[str, Path, TextIO], *, strict: bool = True
) -> Iterator[CWFRecord]:
    """Yield CWF records from a file or open text stream.

    ``strict`` semantics as in :func:`repro.workload.swf.iter_swf`:
    malformed lines raise :class:`CWFParseError` with file/line
    context, or are skipped with a warning under ``strict=False``.
    """
    if isinstance(source, (str, Path)):
        with _open_text(source, "r") as fh:
            yield from iter_cwf(fh, strict=strict)
        return
    for _, record in numbered_records(
        source,
        CWFRecord.parse,
        strict=strict,
        source=source_name(source),
        error_cls=CWFParseError,
    ):
        yield record


def read_cwf(
    source: Union[str, Path, TextIO], *, strict: bool = True
) -> List[CWFRecord]:
    """Read an entire CWF file into a list of records."""
    return list(iter_cwf(source, strict=strict))


def write_cwf(
    records: Iterable[CWFRecord],
    target: Union[str, Path, TextIO],
    header: Iterable[str] = (),
) -> None:
    """Write records as CWF with optional ``;``-prefixed header lines."""
    if isinstance(target, (str, Path)):
        with _open_text(target, "w") as fh:
            write_cwf(records, fh, header=header)
        return
    for line in header:
        target.write(f"; {line}\n")
    for record in records:
        target.write(record.to_line() + "\n")


def parse_cwf_workload(
    source: Union[str, Path, TextIO], *, strict: bool = True
) -> Tuple[List[Job], List[ECC]]:
    """Split a CWF file into submissions and elastic control commands.

    ECC lines must reference a previously seen job id; dangling
    references raise :class:`CWFParseError` because they can never be
    applied.  Every failure — parse errors, semantic violations, and
    stray :class:`ValueError` from the ``Job``/``ECC`` constructors
    (e.g. a dedicated start before its submit) — is reported as a
    :class:`CWFParseError` with file/line context, or skipped with a
    :class:`RuntimeWarning` under ``strict=False``.
    """
    if isinstance(source, (str, Path)):
        with _open_text(source, "r") as fh:
            return parse_cwf_workload(fh, strict=strict)
    name = source_name(source)
    jobs: List[Job] = []
    eccs: List[ECC] = []
    seen: set[int] = set()
    for lineno, record in numbered_records(
        source, CWFRecord.parse, strict=strict, source=name, error_cls=CWFParseError
    ):
        try:
            if record.is_submission:
                job = record.to_job()
                if job.job_id in seen:
                    raise ValueError(f"duplicate submission for job {job.job_id}")
                seen.add(job.job_id)
                jobs.append(job)
            else:
                if record.job_id not in seen:
                    raise ValueError(
                        f"ECC references unknown job {record.job_id} "
                        "(submissions must precede their ECCs)"
                    )
                eccs.append(record.to_ecc())
        except ValueError as exc:
            error = CWFParseError(str(exc), source=name, line=lineno)
            if strict:
                raise error from exc
            warnings.warn(
                f"skipping malformed record: {error}", RuntimeWarning, stacklevel=2
            )
    return jobs, eccs


__all__ = [
    "CWFParseError",
    "CWFRecord",
    "iter_cwf",
    "parse_cwf_workload",
    "read_cwf",
    "write_cwf",
]
