"""Typed workload-format errors with source context.

Malformed trace files used to surface as bare ``ValueError`` /
``IndexError`` with no hint of *where* the bad record lives — useless
against a 100k-line archive log.  :class:`WorkloadFormatError` is the
common base for every trace-parsing failure (``SWFParseError`` and
``CWFParseError`` subclass it) and carries the source name and
1-based line number, rendered into the message.

Parsers accept ``strict=False`` to *skip* malformed records with a
:class:`RuntimeWarning` instead of raising — the right mode for
dirty real-world archive logs where a handful of broken lines should
not discard the other hundred thousand.
"""

from __future__ import annotations

import warnings
from typing import Callable, Iterable, Iterator, Optional, Tuple, TypeVar

R = TypeVar("R")


class WorkloadFormatError(ValueError):
    """A workload trace record could not be parsed or converted.

    Attributes:
        source: Name of the offending file/stream (None when unknown).
        line: 1-based line number of the offending record (None when
            unknown).
    """

    def __init__(
        self,
        message: str,
        *,
        source: Optional[str] = None,
        line: Optional[int] = None,
    ) -> None:
        self.source = source
        self.line = line
        location = ""
        if source is not None:
            location = f"{source}:"
        if line is not None:
            location += f"{line}:"
        super().__init__(f"{location} {message}" if location else message)


def numbered_records(
    lines: Iterable[str],
    parse: Callable[[str], R],
    *,
    strict: bool = True,
    source: Optional[str] = None,
    error_cls: type = WorkloadFormatError,
) -> Iterator[Tuple[int, R]]:
    """Parse trace lines into ``(line_number, record)`` pairs.

    Blank lines and ``;`` comments are skipped silently.  A record
    that fails to parse (any :class:`ValueError`, which covers the
    format-specific parse errors) is re-raised as ``error_cls`` with
    file/line context under ``strict``, or skipped with a
    :class:`RuntimeWarning` otherwise.
    """
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        try:
            yield lineno, parse(line)
        except ValueError as exc:
            error = error_cls(str(exc), source=source, line=lineno)
            if strict:
                raise error from exc
            warnings.warn(
                f"skipping malformed record: {error}", RuntimeWarning, stacklevel=3
            )


def source_name(stream: object) -> Optional[str]:
    """Best-effort display name of an open text stream."""
    name = getattr(stream, "name", None)
    return str(name) if isinstance(name, (str, bytes)) else None


__all__ = ["WorkloadFormatError", "numbered_records", "source_name"]
