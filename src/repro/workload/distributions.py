"""Statistical building blocks of the Lublin–Feitelson workload model.

The model [17] composes three families:

- *two-stage uniform* — a mixture of two uniforms over adjacent
  intervals, used for (log2 of) job sizes,
- *Gamma* — used for arrival quantities,
- *hyper-Gamma* — a two-component Gamma mixture whose mixing
  probability ``p`` is correlated with job size, used for (log2 of)
  runtimes.

All samplers take an explicit :class:`numpy.random.Generator`; nothing
in the package touches global random state, so every experiment is
reproducible from its seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def two_stage_uniform(
    low: float, med: float, high: float, prob: float, rng: np.random.Generator
) -> float:
    """Sample the two-stage uniform distribution of [17].

    With probability ``prob`` the value is uniform on ``[low, med]``,
    otherwise uniform on ``[med, high]``.

    Raises:
        ValueError: unless ``low <= med <= high`` and ``0<=prob<=1``.
    """
    if not (low <= med <= high):
        raise ValueError(f"need low <= med <= high, got {(low, med, high)}")
    if not 0.0 <= prob <= 1.0:
        raise ValueError(f"prob must be in [0,1], got {prob}")
    if rng.random() < prob:
        return float(rng.uniform(low, med))
    return float(rng.uniform(med, high))


def gamma(shape: float, scale: float, rng: np.random.Generator) -> float:
    """Sample Gamma(shape, scale) with mean ``shape * scale``.

    The Lublin model (and the paper's Tables I–II) uses the
    shape/scale ``(α, β)`` parameterization.
    """
    if shape <= 0 or scale <= 0:
        raise ValueError(f"gamma parameters must be positive, got {(shape, scale)}")
    return float(rng.gamma(shape, scale))


@dataclass(frozen=True)
class HyperGamma:
    """Two-component Gamma mixture (the paper's Table I family).

    With probability ``p`` sample Gamma(a1, b1), else Gamma(a2, b2).
    The runtime model makes ``p`` a linear function of job size, so
    ``p`` is supplied per-sample rather than stored.
    """

    a1: float
    b1: float
    a2: float
    b2: float

    def __post_init__(self) -> None:
        for name in ("a1", "b1", "a2", "b2"):
            if getattr(self, name) <= 0:
                raise ValueError(f"hyper-gamma parameter {name} must be positive")

    def sample(self, p: float, rng: np.random.Generator) -> float:
        """Sample with first-component probability ``p`` (clipped to [0,1])."""
        p = min(1.0, max(0.0, p))
        if rng.random() < p:
            return gamma(self.a1, self.b1, rng)
        return gamma(self.a2, self.b2, rng)

    def mean(self, p: float) -> float:
        """Mixture mean for a given ``p`` (used in analytic tests)."""
        p = min(1.0, max(0.0, p))
        return p * self.a1 * self.b1 + (1.0 - p) * self.a2 * self.b2


def log2_gamma_mean(shape: float, scale: float) -> float:
    """Exact mean of ``2**X`` for ``X ~ Gamma(shape, scale)``.

    This is the Gamma moment-generating function at ``t = ln 2``:
    ``(1 - scale*ln2)**(-shape)``, finite only when ``scale < 1/ln2``.
    Used by the load calibrator to seed its search and by tests to
    check the samplers against theory.
    """
    t = math.log(2.0)
    if scale * t >= 1.0:
        return math.inf
    return (1.0 - scale * t) ** (-shape)


def exponential(mean: float, rng: np.random.Generator) -> float:
    """Exponential sample with the given mean.

    The paper samples dedicated-job requested start offsets and ECC
    extension/reduction amounts "from a Poisson (exponential)
    distribution" (§IV-D).
    """
    if mean <= 0:
        raise ValueError(f"exponential mean must be positive, got {mean}")
    return float(rng.exponential(mean))


__all__ = [
    "HyperGamma",
    "exponential",
    "gamma",
    "log2_gamma_mean",
    "two_stage_uniform",
]
