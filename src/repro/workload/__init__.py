"""Workload model: jobs, elastic control commands, formats, generators.

This subpackage reproduces everything on the workload side of the
paper's Figure 3:

- :mod:`repro.workload.job` / :mod:`repro.workload.ecc` — the job and
  Elastic Control Command records (the paper's Notations box),
- :mod:`repro.workload.swf` / :mod:`repro.workload.cwf` — the Standard
  Workload Format and the paper's Cloud Workload Format extension
  (fields 19–21 of Figure 4),
- :mod:`repro.workload.distributions` — the statistical building
  blocks (two-stage uniform, Gamma, hyper-Gamma) of Lublin–Feitelson,
- :mod:`repro.workload.lublin` — the full Lublin–Feitelson analytical
  model [17] used for the SDSC-like validation trace,
- :mod:`repro.workload.twostage` — the paper's §IV-D two-stage-uniform
  job-size model for BlueGene/P,
- :mod:`repro.workload.generator` — the CWF workload generator
  (sizes × runtimes × arrivals × P_D dedicated marking × ECC
  injection),
- :mod:`repro.workload.load` — the paper's offered-load formula and
  the β_arr calibration used to sweep Load in §V.
"""

from repro.workload.archive import LoadReport, load_swf_workload
from repro.workload.downey import DowneyConfig, DowneyModel, calibrate_downey
from repro.workload.ecc import ECC, ECCKind
from repro.workload.errors import WorkloadFormatError
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig, Workload
from repro.workload.job import Job, JobKind, JobState
from repro.workload.load import offered_load
from repro.workload.lublin import LublinConfig, LublinModel
from repro.workload.transform import make_malleable
from repro.workload.twostage import TwoStageSizeConfig, TwoStageSizeModel

__all__ = [
    "CWFWorkloadGenerator",
    "DowneyConfig",
    "DowneyModel",
    "ECC",
    "ECCKind",
    "GeneratorConfig",
    "Job",
    "JobKind",
    "JobState",
    "LoadReport",
    "LublinConfig",
    "LublinModel",
    "TwoStageSizeConfig",
    "TwoStageSizeModel",
    "Workload",
    "WorkloadFormatError",
    "calibrate_downey",
    "load_swf_workload",
    "make_malleable",
    "offered_load",
]
