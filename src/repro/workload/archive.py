"""Loading real Parallel-Workloads-Archive logs for simulation.

Real SWF logs are messy: header comments carry the machine size,
some records lack runtimes or processor counts, sizes may violate a
target machine's granularity, and studies usually simulate an excerpt
rather than a multi-year log.  :func:`load_swf_workload` handles all
of that in one call and reports exactly what it did, so experiments on
real traces stay auditable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.workload.generator import Workload
from repro.workload.job import Job
from repro.workload.swf import SWFParseError, iter_swf

#: Header comment key (Parallel Workloads Archive convention).
_MAX_PROCS_RE = re.compile(r"^;\s*MaxProcs\s*:\s*(\d+)", re.IGNORECASE)


@dataclass
class LoadReport:
    """What :func:`load_swf_workload` kept, skipped and adjusted."""

    total_records: int = 0
    kept: int = 0
    skipped_unusable: int = 0  # no runtime/processors at all
    skipped_oversized: int = 0  # larger than the target machine
    snapped_to_granularity: int = 0
    header_max_procs: Optional[int] = None
    notes: List[str] = field(default_factory=list)

    def summary(self) -> str:
        """One-line description of the load."""
        parts = [f"kept {self.kept}/{self.total_records} records"]
        if self.skipped_unusable:
            parts.append(f"{self.skipped_unusable} unusable")
        if self.skipped_oversized:
            parts.append(f"{self.skipped_oversized} oversized")
        if self.snapped_to_granularity:
            parts.append(f"{self.snapped_to_granularity} snapped to granularity")
        return ", ".join(parts)


def read_header_max_procs(path: Union[str, Path]) -> Optional[int]:
    """Extract ``MaxProcs`` from an SWF header, if present."""
    from repro.workload.swf import _open_text

    with _open_text(path, "r") as fh:
        for raw in fh:
            line = raw.strip()
            if not line:
                continue
            if not line.startswith(";"):
                break  # records begin; header over
            match = _MAX_PROCS_RE.match(line)
            if match:
                return int(match.group(1))
    return None


def load_swf_workload(
    path: Union[str, Path],
    machine_size: Optional[int] = None,
    granularity: int = 1,
    max_jobs: Optional[int] = None,
    rebase_time: bool = True,
    strict: bool = True,
) -> Tuple[Workload, LoadReport]:
    """Load an archive SWF log into a simulatable :class:`Workload`.

    Args:
        path: ``.swf`` or ``.swf.gz`` file.
        machine_size: Target machine; defaults to the header's
            ``MaxProcs`` (required when the header lacks it).
        granularity: Allocation unit of the target machine; job sizes
            are snapped *up* to it (a 33-proc request needs 2 psets).
        strict: When False, syntactically malformed lines are skipped
            with a warning instead of aborting the load (see
            :func:`repro.workload.swf.iter_swf`).
        max_jobs: Keep only the first N usable records (submission
            order), the usual excerpting practice.
        rebase_time: Shift submissions so the first kept job arrives
            at t = 0.

    Returns:
        The workload and a :class:`LoadReport` of every adjustment.

    Raises:
        ValueError: when no machine size is available or no usable
            records survive.
    """
    report = LoadReport()
    report.header_max_procs = read_header_max_procs(path)
    size = machine_size or report.header_max_procs
    if size is None:
        raise ValueError(
            f"{path}: no MaxProcs header; pass machine_size explicitly"
        )
    if size % granularity != 0:
        raise ValueError(
            f"machine size {size} is not a multiple of granularity {granularity}"
        )

    jobs: List[Job] = []
    for record in iter_swf(path, strict=strict):
        report.total_records += 1
        if max_jobs is not None and report.kept >= max_jobs:
            break
        try:
            job = record.to_job()
        except SWFParseError:
            report.skipped_unusable += 1
            continue
        num = job.num
        if num % granularity != 0:
            num = ((num + granularity - 1) // granularity) * granularity
            report.snapped_to_granularity += 1
        if num > size:
            report.skipped_oversized += 1
            continue
        if num != job.num:
            job = Job(
                job_id=job.job_id,
                submit=job.submit,
                num=num,
                estimate=job.original_estimate,
                actual=job.actual,
                kind=job.kind,
                cancel_at=job.cancel_at,
            )
        jobs.append(job)
        report.kept += 1
    if not jobs:
        raise ValueError(f"{path}: no usable records")

    if rebase_time:
        origin = min(job.submit for job in jobs)
        if origin > 0:
            report.notes.append(f"rebased submissions by -{origin:g}s")
            jobs = [
                Job(
                    job_id=j.job_id,
                    submit=j.submit - origin,
                    num=j.num,
                    estimate=j.original_estimate,
                    actual=j.actual,
                    kind=j.kind,
                    cancel_at=None if j.cancel_at is None else j.cancel_at - origin,
                )
                for j in jobs
            ]

    workload = Workload(
        jobs=jobs,
        machine_size=size,
        granularity=granularity,
        description=f"SWF log {Path(path).name} ({report.summary()})",
    )
    return workload, report


__all__ = ["LoadReport", "load_swf_workload", "read_header_max_procs"]
