"""Command-line entry points: ``repro-sim`` and ``repro``.

Runs one simulation (or a small comparison) from the terminal::

    repro-sim --algorithms EASY LOS Delayed-LOS --jobs 500 --load 0.9
    repro-sim --cwf my_workload.cwf --algorithms Hybrid-LOS
    repro-sim --algorithms EASY LOS --parallel 4 --cache --progress
    repro-sim --algorithms EASY Hybrid-LOS-E \
        --faults mtbf=86400,mttr=3600,seed=1 --max-retries 3 --checkpoint
    repro-sim --algorithms Delayed-LOS --trace-out run.jsonl --telemetry
    repro-sim --list-algorithms

The ``repro`` umbrella command wraps this plus the trace inspector,
the trace-report builder and the benchmark history diff
(docs/observability.md)::

    repro sim --algorithms EASY --trace-out run.jsonl
    repro trace run.jsonl --check
    repro report run.jsonl -o report.md
    repro profile --algorithm Delayed-LOS --spans-out spans.json
    repro explain run.jsonl --job 17
    repro bench-compare --threshold 1.5

Useful for eyeballing the system without writing Python; the full
reproduction lives in ``benchmarks/``.  Algorithm runs fan out over
worker processes (``--parallel`` / ``REPRO_JOBS``) and can reuse the
content-addressed run cache (``--cache`` / ``REPRO_CACHE=1``); see
docs/performance.md.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.registry import ALGORITHMS
from repro.experiments.cache import RunCache
from repro.experiments.calibrate import calibrate_beta_arr
from repro.experiments.parallel import resolve_jobs
from repro.experiments.sweep import run_algorithms
from repro.faults.model import RetryPolicy, parse_faults_spec
from repro.metrics.report import format_table
from repro.obs.progress import ProgressReporter, ProgressSummary
from repro.workload.cwf import parse_cwf_workload
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig, Workload
from repro.workload.twostage import TwoStageSizeConfig


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-sim`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description=(
            "Simulate parallel-job scheduling (IPPS 2012 Delayed-LOS / "
            "Hybrid-LOS reproduction)."
        ),
    )
    parser.add_argument(
        "--list-algorithms", action="store_true", help="list registry names and exit"
    )
    parser.add_argument(
        "--algorithms",
        nargs="+",
        default=["EASY", "LOS", "Delayed-LOS"],
        help="algorithms to compare (Table III names)",
    )
    parser.add_argument("--jobs", type=int, default=500, help="jobs to generate (N_J)")
    parser.add_argument("--machine", type=int, default=320, help="machine size M")
    parser.add_argument(
        "--load", type=float, default=0.9, help="target offered load (calibrated)"
    )
    parser.add_argument("--p-small", type=float, default=0.5, help="P_S")
    parser.add_argument("--p-dedicated", type=float, default=0.0, help="P_D")
    parser.add_argument("--p-extend", type=float, default=0.0, help="P_E")
    parser.add_argument("--p-reduce", type=float, default=0.0, help="P_R")
    parser.add_argument("--cs", type=int, default=7, help="C_s skip threshold")
    parser.add_argument("--lookahead", type=int, default=50, help="DP lookahead")
    parser.add_argument("--seed", type=int, default=42, help="RNG seed")
    parser.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="worker processes for the comparison (default: REPRO_JOBS or CPU count; "
        "1 = deterministic serial path, same results)",
    )
    parser.add_argument(
        "--cache", action="store_true",
        help="reuse/persist runs in the content-addressed run cache "
        "(.repro_cache/; also enabled by REPRO_CACHE=1)",
    )
    parser.add_argument(
        "--cache-dir", type=str, default=None, metavar="DIR",
        help="run-cache directory (default: .repro_cache or REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--trace-out", type=str, default=None, metavar="PATH",
        help="export each run's event trace as JSONL (docs/observability.md); "
        "with several algorithms the name expands per run, e.g. "
        "run.jsonl -> run.EASY.jsonl.  Inspect with 'repro trace PATH'",
    )
    parser.add_argument(
        "--spans-out", type=str, default=None, metavar="PATH",
        help="profile each run with phase spans and write the timeline as "
        "Chrome trace-event JSON, loadable in Perfetto or chrome://tracing "
        "(docs/performance.md); with several algorithms the name expands "
        "per run like --trace-out.  Per-phase aggregates also appear in "
        "--telemetry output",
    )
    parser.add_argument(
        "--decisions", action="store_true",
        help="record a 'decision' trace record with a reason code whenever "
        "a queued job is passed over (requires --trace-out); inspect with "
        "'repro explain TRACE --job N'",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="report per-run progress (done/total, cache hits, ETA) on stderr",
    )
    parser.add_argument(
        "--telemetry", action="store_true",
        help="print each run's scheduler telemetry counters after the table",
    )
    parser.add_argument(
        "--faults", type=str, default=None, metavar="SPEC",
        help="inject faults: key=value spec, e.g. "
        "mtbf=86400,mttr=3600,seed=1,pfail=0.02,poison=3|9 (docs/resilience.md)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=3, metavar="K",
        help="requeue budget per failed job before it fails permanently",
    )
    parser.add_argument(
        "--retry-backoff", type=float, default=0.0, metavar="SECONDS",
        help="resubmission delay after a failure (doubles per extra attempt)",
    )
    parser.add_argument(
        "--checkpoint", action="store_true",
        help="preserve completed work across restarts (elastic -E policies, "
        "applied through the ECC machinery)",
    )
    parser.add_argument(
        "--checkpoint-dir", type=str, default=None, metavar="DIR",
        help="periodically checkpoint each run into DIR/<algorithm>/ and "
        "resume from there on the next invocation (docs/resilience.md); "
        "a resumed run is bitwise-identical to an uninterrupted one",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="checkpoint cadence in simulated events (default: 50000)",
    )
    parser.add_argument(
        "--checkpoint-seconds", type=float, default=None, metavar="S",
        help="additional wall-clock checkpoint cadence in seconds",
    )
    parser.add_argument(
        "--manifest", type=str, default=None, metavar="PATH",
        help="record per-run completion in a durable sweep manifest; a "
        "killed sweep re-invoked with the same command re-runs only the "
        "remainder (implies --cache)",
    )
    parser.add_argument(
        "--malleable", type=float, default=0.0, metavar="FRAC",
        help="declare [min, pref, max] processor ranges on this fraction "
        "of batch jobs, enabling the Malleable-* policies to resize "
        "them at runtime (docs/malleability.md); rigid policies ignore "
        "the ranges and behave byte-identically",
    )
    parser.add_argument(
        "--malleable-min", type=float, default=0.5, metavar="F",
        help="min_procs = num * F for jobs selected by --malleable",
    )
    parser.add_argument(
        "--malleable-pref", type=float, default=1.5, metavar="F",
        help="pref_procs = num * F for jobs selected by --malleable",
    )
    parser.add_argument(
        "--malleable-max", type=float, default=2.0, metavar="F",
        help="max_procs = num * F for jobs selected by --malleable",
    )
    parser.add_argument(
        "--cwf", type=str, default=None, help="load a CWF workload file instead of generating"
    )
    parser.add_argument(
        "--save-cwf", type=str, default=None, help="write the generated workload to a CWF file"
    )
    parser.add_argument(
        "--stats", action="store_true", help="print workload characterization before running"
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="validate the workload and exit non-zero on errors (no simulation)",
    )
    parser.add_argument(
        "--timeline", action="store_true",
        help="render a text occupancy timeline per algorithm (small runs only)",
    )
    parser.add_argument(
        "--export-csv", type=str, default=None,
        help="write per-run aggregates to this CSV file",
    )
    parser.add_argument(
        "--export-json", type=str, default=None,
        help="write the first algorithm's full run (records included) to JSON",
    )
    parser.add_argument(
        "--figure", type=str, default=None, choices=["1", "5", "6", "7", "8", "9", "10", "11"],
        help="regenerate a paper figure instead of a single comparison "
        "(equivalent benchmark lives in benchmarks/)",
    )
    return parser


def _build_workload(args: argparse.Namespace) -> Workload:
    if args.cwf:
        jobs, eccs = parse_cwf_workload(args.cwf)
        workload = Workload(
            jobs=jobs,
            eccs=eccs,
            machine_size=args.machine,
            granularity=1,
            description=f"loaded from {args.cwf}",
        )
    else:
        config = GeneratorConfig(
            n_jobs=args.jobs,
            machine_size=args.machine,
            size=TwoStageSizeConfig(p_small=args.p_small),
            p_dedicated=args.p_dedicated,
            p_extend=args.p_extend,
            p_reduce=args.p_reduce,
        )
        calibration = calibrate_beta_arr(config, args.load, seed=args.seed)
        workload = calibration.workload
    if getattr(args, "malleable", 0.0):
        from repro.workload.transform import make_malleable

        workload = make_malleable(
            workload,
            args.malleable,
            min_factor=args.malleable_min,
            pref_factor=args.malleable_pref,
            max_factor=args.malleable_max,
            seed=args.seed,
        )
    return workload


def _trace_paths(trace_out: str, algorithms: Sequence[str]) -> Dict[str, str]:
    """Per-algorithm trace file paths for ``--trace-out``.

    A single algorithm gets the path verbatim; a comparison expands the
    name per run so traces never overwrite each other::

        run.jsonl + [EASY, LOS]  ->  run.EASY.jsonl, run.LOS.jsonl
    """
    if len(algorithms) == 1:
        return {algorithms[0]: trace_out}
    path = Path(trace_out)
    suffix = path.suffix or ".jsonl"
    return {
        name: str(path.with_name(f"{path.stem}.{name}{suffix}"))
        for name in algorithms
    }


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_algorithms:
        for name in sorted(ALGORITHMS):
            print(name)
        return 0
    if args.figure:
        return _figure_report(args.figure, args.jobs)

    workload = _build_workload(args)
    if args.save_cwf:
        workload.to_cwf(args.save_cwf)
        print(f"wrote {args.save_cwf}")
    print(
        f"workload: {len(workload)} jobs "
        f"({len(workload.dedicated_jobs)} dedicated, {len(workload.eccs)} ECCs), "
        f"offered load {workload.offered_load():.3f}, M={workload.machine_size}"
    )
    if args.validate:
        from repro.workload.validate import format_issues, has_errors, validate_workload

        issues = validate_workload(workload)
        print(format_issues(issues))
        return 1 if has_errors(issues) else 0
    if args.stats:
        from repro.workload.stats import characterize

        print()
        print(characterize(workload).render())
        print()

    unknown = [name for name in args.algorithms if name not in ALGORITHMS]
    if unknown:
        print(
            f"unknown algorithm(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(ALGORITHMS))}",
            file=sys.stderr,
        )
        return 2

    try:
        resolve_jobs(args.parallel)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    faults = None
    retry = None
    if args.faults:
        try:
            faults = parse_faults_spec(args.faults)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        try:
            retry = RetryPolicy(
                max_retries=args.max_retries,
                backoff=args.retry_backoff,
                checkpoint=args.checkpoint,
            )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    cache = None
    if args.cache or args.cache_dir or args.manifest:
        # --manifest implies --cache: the manifest records which runs
        # finished, the cache holds their metrics.
        cache = RunCache.from_env()
        cache.enabled = True
        if args.cache_dir:
            cache.root = args.cache_dir
    trace_out = None
    if args.trace_out:
        trace_out = _trace_paths(args.trace_out, args.algorithms)
    if args.decisions and trace_out is None:
        print(
            "--decisions records pass-over provenance in the trace stream; "
            "pass --trace-out as well",
            file=sys.stderr,
        )
        return 2
    spans_out = None
    if args.spans_out:
        spans_out = _trace_paths(args.spans_out, args.algorithms)
    # Always collect progress events (so the end-of-sweep summary line
    # — cache hit rate, serial retries — prints even without
    # --progress); forward them to a live reporter only when asked.
    progress = ProgressSummary(ProgressReporter() if args.progress else None)
    from repro.durable.signals import EXIT_INTERRUPTED, sigterm_as_interrupt

    try:
        with sigterm_as_interrupt():
            results = run_algorithms(
                workload,
                args.algorithms,
                max_skip_count=args.cs,
                lookahead=args.lookahead,
                faults=faults,
                retry=retry,
                jobs=args.parallel,
                cache=cache,
                trace_out=trace_out,
                spans_out=spans_out,
                decisions=args.decisions,
                progress=progress,
                manifest=args.manifest,
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every=args.checkpoint_every,
                checkpoint_seconds=args.checkpoint_seconds,
            )
    except KeyboardInterrupt as exc:
        # SweepInterrupted (manifest attached) carries completed/total;
        # a bare Ctrl-C does not.  Either way: flush the progress
        # summary, say how to pick the sweep back up, exit 75.
        completed = getattr(exc, "completed", None)
        print(progress.render(None), file=sys.stderr)
        where = (
            f" after {completed}/{getattr(exc, 'total', len(args.algorithms))} runs"
            if completed is not None
            else ""
        )
        hints = []
        if args.manifest:
            hints.append("completed runs are recorded; re-run the same command "
                         "to continue where it left off")
        if args.checkpoint_dir:
            hints.append(f"in-flight runs resume from {args.checkpoint_dir}/")
        hint = f" ({'; '.join(hints)})" if hints else ""
        print(f"interrupted{where}{hint}", file=sys.stderr)
        return EXIT_INTERRUPTED
    headers = ["algorithm", "utilization", "mean wait (s)", "slowdown", "makespan (s)"]
    if faults is not None:
        headers += ["requeues", "failed", "lost work (ps)", "degraded (s)"]
    rows = []
    for name, metrics in results.items():
        row = [
            name,
            round(metrics.utilization, 4),
            round(metrics.mean_wait, 1),
            round(metrics.slowdown, 3),
            round(metrics.makespan, 0),
        ]
        if faults is not None:
            row += [
                metrics.requeue_count,
                metrics.failed_jobs,
                round(metrics.lost_work, 0),
                round(metrics.degraded_time, 0),
            ]
        rows.append(row)
    print(format_table(headers, rows))
    # Total bounded-series truncation across the batch, so dropped
    # telemetry samples are visible without --telemetry.
    samples_dropped = sum(
        value
        for metrics in results.values()
        if metrics.telemetry is not None
        for counter, value in metrics.telemetry.counters.items()
        if counter.endswith("_samples_dropped")
    )
    print(progress.render(
        cache.stats.hit_rate if cache is not None else None,
        samples_dropped=samples_dropped,
    ))
    if cache is not None:
        print(str(cache.stats))
    if trace_out is not None:
        for name in args.algorithms:
            print(f"trace ({name}): wrote {trace_out[name]}")
    if spans_out is not None:
        for name in args.algorithms:
            print(f"spans ({name}): wrote {spans_out[name]}")
    if args.telemetry:
        from repro.obs.telemetry import format_snapshot

        for name, metrics in results.items():
            snapshot = metrics.telemetry
            print(f"\n--- telemetry: {name} ---")
            if snapshot is None:
                print("(no telemetry attached to this run)")
                continue
            print(format_snapshot(snapshot))

    if args.timeline:
        from repro.metrics.timeline import render_timeline

        for name, metrics in results.items():
            print(f"\n--- timeline: {name} ---")
            print(render_timeline(metrics.records, workload.machine_size, max_rows=30))
    if args.export_csv:
        from repro.metrics.export import runs_to_csv

        runs_to_csv(results.values(), args.export_csv)
        print(f"wrote {args.export_csv}")
    if args.export_json:
        from repro.metrics.export import run_to_json

        first = next(iter(results.values()))
        run_to_json(first, args.export_json)
        print(f"wrote {args.export_json}")
    return 0


def _figure_report(figure_id: str, n_jobs: int) -> int:
    """Run one paper-figure experiment and print its series."""
    from repro.experiments import figures
    from repro.experiments.ascii_plot import ascii_plot
    from repro.experiments.sweep import SweepResult

    runner = {
        "1": lambda: figures.figure1(n_jobs=n_jobs),
        "5": lambda: figures.figure5(n_jobs=n_jobs),
        "6": lambda: figures.figure6(n_jobs=n_jobs),
        "7": lambda: figures.figure7(n_jobs=n_jobs),
        "8": lambda: figures.figure8(n_jobs=n_jobs),
        "9": lambda: figures.figure9(n_jobs=n_jobs),
        "10": lambda: figures.figure10(n_jobs=n_jobs),
        "11": lambda: figures.figure11(n_jobs=n_jobs),
    }[figure_id]
    result = runner()
    sweeps = result if isinstance(result, dict) else {f"figure {figure_id}": result}
    for label, sweep in sweeps.items():
        assert isinstance(sweep, SweepResult)
        print(f"\n=== {label} ===")
        for metric in ("utilization", "mean_wait"):
            series = {name: sweep.metric_series(name, metric) for name in sweep.series}
            print(
                ascii_plot(
                    sweep.sweep_values,
                    series,
                    title=f"{metric} vs {sweep.sweep_label}",
                    height=12,
                )
            )
    return 0


def _resume_main(argv: List[str]) -> int:
    """``repro resume``: continue an interrupted checkpointed run."""
    parser = argparse.ArgumentParser(
        prog="repro resume",
        description="Resume a simulation from a crash-safe checkpoint "
        "(written by --checkpoint-dir or simulate(checkpoint=...)); the "
        "completed run is bitwise-identical to an uninterrupted one "
        "(docs/resilience.md).",
    )
    parser.add_argument(
        "source",
        help="a checkpoint file, or a checkpoint directory (the newest "
        "usable checkpoint is taken)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="keep checkpointing the continued run every N events "
        "(default: 50000)",
    )
    parser.add_argument(
        "--checkpoint-seconds", type=float, default=None, metavar="S",
        help="additional wall-clock checkpoint cadence in seconds",
    )
    parser.add_argument(
        "--trace-out", type=str, default=None, metavar="PATH",
        help="override the trace file location recorded in the checkpoint "
        "(only valid when the interrupted run was tracing)",
    )
    args = parser.parse_args(argv)

    from repro.durable.checkpoint import (
        CheckpointConfig,
        CheckpointError,
        CheckpointInterrupt,
        inspect_checkpoint,
        latest_checkpoint,
        list_checkpoints,
        load_checkpoint,
    )
    from repro.durable.signals import EXIT_INTERRUPTED, sigterm_as_interrupt

    path = Path(args.source)
    try:
        if path.is_dir():
            ckpt_dir = path
            found = latest_checkpoint(path)
            if found is None:
                print(f"no usable checkpoint under {path}", file=sys.stderr)
                return 2
            path = found
        else:
            ckpt_dir = path.parent
        meta = inspect_checkpoint(path)
        cadence = {}
        if args.checkpoint_every is not None:
            cadence["every_events"] = args.checkpoint_every
        config = CheckpointConfig(
            dir=ckpt_dir, every_seconds=args.checkpoint_seconds, **cadence
        )
        runner = load_checkpoint(path, trace_out=args.trace_out)
    except CheckpointError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(
        f"resuming {meta.get('algorithm', '?')} from {path} "
        f"(event {meta.get('event_count', '?')}, t={meta.get('sim_time', '?')})"
    )
    try:
        with sigterm_as_interrupt():
            metrics = runner.run(checkpoint=config)
    except CheckpointInterrupt as exc:
        print(
            f"interrupted again; checkpoint written to {exc.path} — "
            f"continue with 'repro resume {ckpt_dir}'",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    except KeyboardInterrupt:
        print(
            f"interrupted between checkpoints; continue with "
            f"'repro resume {ckpt_dir}' (restarts from the newest checkpoint)",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    # Complete: the checkpoints are obsolete (and would otherwise make a
    # future 'repro resume' replay the tail of a finished run).
    for stale in list_checkpoints(ckpt_dir):
        try:
            stale.unlink()
        except OSError:
            pass
    print(format_table(
        ["algorithm", "utilization", "mean wait (s)", "slowdown", "makespan (s)"],
        [[
            meta.get("algorithm", "?"),
            round(metrics.utilization, 4),
            round(metrics.mean_wait, 1),
            round(metrics.slowdown, 3),
            round(metrics.makespan, 0),
        ]],
    ))
    if runner._trace_out is not None:
        print(f"trace: wrote {runner._trace_out}")
    return 0


def _profile_main(argv: List[str]) -> int:
    """``repro profile``: phase-span hot-spot profile of one run."""
    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="Run one simulation with the phase-span profiler "
        "enabled and print the per-phase hot-spot table "
        "(docs/performance.md).  --spans-out exports the span timeline "
        "as Chrome trace-event JSON for Perfetto / chrome://tracing; "
        "--cprofile adds function-level detail on top.",
    )
    parser.add_argument(
        "--algorithm", default="Delayed-LOS", choices=sorted(ALGORITHMS)
    )
    parser.add_argument("--jobs", type=int, default=500, help="jobs to generate")
    parser.add_argument("--p-small", type=float, default=0.5, help="P_S")
    parser.add_argument("--p-extend", type=float, default=0.0, help="P_E")
    parser.add_argument("--p-reduce", type=float, default=0.0, help="P_R")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--cs", type=int, default=7, help="C_s skip threshold")
    parser.add_argument("--lookahead", type=int, default=50, help="DP lookahead")
    parser.add_argument(
        "--cwf", default=None, metavar="PATH",
        help="profile this CWF workload instead of generating one",
    )
    parser.add_argument(
        "--spans-out", default=None, metavar="PATH",
        help="write the span timeline as Chrome trace-event JSON "
        "(open in Perfetto or chrome://tracing)",
    )
    parser.add_argument(
        "--cprofile", default=None, metavar="PATH",
        help="additionally run under cProfile and dump raw stats to PATH "
        "(view with pstats/snakeviz)",
    )
    args = parser.parse_args(argv)

    from repro.core.registry import make_scheduler
    from repro.experiments.runner import SimulationRunner
    from repro.obs.spans import phase_table

    if args.cwf:
        jobs, eccs = parse_cwf_workload(args.cwf)
        workload = Workload(
            jobs=jobs, eccs=eccs, machine_size=320, granularity=1,
            description=f"loaded from {args.cwf}",
        )
    else:
        config = GeneratorConfig(
            n_jobs=args.jobs,
            size=TwoStageSizeConfig(p_small=args.p_small),
            p_extend=args.p_extend,
            p_reduce=args.p_reduce,
        )
        workload = CWFWorkloadGenerator(config).generate(
            np.random.default_rng(args.seed)
        )
    scheduler = make_scheduler(
        args.algorithm, max_skip_count=args.cs, lookahead=args.lookahead
    )
    runner = SimulationRunner(
        workload, scheduler, spans=True, spans_out=args.spans_out
    )

    profiler = None
    if args.cprofile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    metrics = runner.run()
    if profiler is not None:
        profiler.disable()

    print(
        f"{args.algorithm}: {metrics.n_jobs} jobs, utilization "
        f"{metrics.utilization:.3f}, mean wait {metrics.mean_wait:.0f}s"
    )
    snapshot = metrics.telemetry
    assert snapshot is not None  # telemetry is always on for direct runs
    wall = snapshot.timers.get("run_wall_s", 0.0)
    events = snapshot.counters.get("span_event", 0)
    if wall > 0 and events:
        print(f"{events} events in {wall:.3f}s wall ({events / wall:,.0f} events/s)")
    print()
    print(phase_table(snapshot))
    if args.spans_out:
        print(f"\nspans: wrote {args.spans_out} (open in Perfetto)")
    if profiler is not None:
        import pstats

        pstats.Stats(profiler).dump_stats(args.cprofile)
        print(f"cProfile stats saved to {args.cprofile} (view with snakeviz/pstats)")
    return 0


def repro_main(argv: Optional[List[str]] = None) -> int:
    """Umbrella entry point: ``repro <subcommand> ...``.

    Subcommands:
        ``sim``: the full ``repro-sim`` interface (simulate/compare).
        ``resume``: continue an interrupted checkpointed run
        (:mod:`repro.durable.checkpoint`; docs/resilience.md).
        ``trace``: inspect an exported JSONL trace
        (:mod:`repro.obs.inspect`; docs/observability.md).
        ``report``: build a self-contained Markdown/HTML report from
        traces or a sweep directory (:mod:`repro.obs.report`).
        ``profile``: phase-span hot-spot profile of one run
        (:mod:`repro.obs.spans`; docs/performance.md).
        ``explain``: one job's annotated timeline with pass-over
        provenance (:mod:`repro.obs.explain`; docs/observability.md).
        ``bench-compare``: diff the newest benchmark history entry
        against prior runs (:mod:`repro.obs.bench_history`).
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    usage = (
        "usage: repro {sim,resume,trace,report,profile,explain,bench-compare} "
        "...  (repro <subcommand> --help for details)"
    )
    if not argv or argv[0] in ("-h", "--help"):
        print(usage)
        return 0
    command, rest = argv[0], argv[1:]
    if command == "sim":
        return main(rest)
    if command == "resume":
        return _resume_main(rest)
    if command == "trace":
        from repro.obs.inspect import main as trace_main

        return trace_main(rest)
    if command == "report":
        from repro.obs.report import main as report_main

        return report_main(rest)
    if command == "profile":
        return _profile_main(rest)
    if command == "explain":
        from repro.obs.explain import main as explain_main

        return explain_main(rest)
    if command == "bench-compare":
        from repro.obs.bench_history import main as bench_compare_main

        return bench_compare_main(rest)
    print(f"unknown subcommand: {command!r}\n{usage}", file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
