"""Contiguous partition allocation (BlueGene-style).

The paper's flat capacity model ignores a real BlueGene constraint it
itself brings up in §VI: "a running job [must] shrink or expand in
size while maintaining *space continuity* — a common requirement in
supercomputers like BlueGene/P".  Krevat et al. [8] (related work)
study exactly the fragmentation this causes and the migration that
mitigates it.

:class:`PartitionedMachine` models a 1-D chain of psets (granularity
units) where every allocation must be a *contiguous* run.  It exposes
the same allocate/release surface as :class:`~repro.cluster.machine.
Machine` plus contiguity-specific queries, and distinguishes capacity
exhaustion from *external fragmentation* (enough free psets, but no
contiguous run long enough) so experiments can measure the latter —
see ``benchmarks/bench_ablation_fragmentation.py``.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.cluster.machine import AllocationError


class FragmentationError(AllocationError):
    """Enough free capacity exists, but not contiguously."""


class PartitionedMachine:
    """A 1-D machine whose allocations must be contiguous pset runs.

    Args:
        total: Total processors.
        granularity: Processors per pset (allocation unit *and*
            contiguity cell).

    The unit of placement is the pset index ``0 .. units-1``; an
    allocation of ``num`` processors occupies ``num // granularity``
    consecutive psets, placed first-fit (lowest start index).

    >>> machine = PartitionedMachine(total=128, granularity=32)
    >>> machine.allocate("a", 64)
    0
    >>> machine.allocate("b", 32)
    2
    >>> machine.release("a")
    64
    >>> machine.fits_contiguously(96)
    False
    >>> machine.compact()
    1
    >>> machine.fits_contiguously(96)
    True
    """

    def __init__(self, total: int, granularity: int = 1) -> None:
        if total <= 0 or granularity <= 0 or total % granularity != 0:
            raise ValueError(
                f"invalid machine geometry: total={total}, granularity={granularity}"
            )
        self.total = total
        self.granularity = granularity
        self.units = total // granularity
        self._owner: List[Optional[Hashable]] = [None] * self.units
        self._spans: Dict[Hashable, Tuple[int, int]] = {}  # id -> (start, length)
        self._offline: Set[int] = set()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def used(self) -> int:
        """Processors currently allocated."""
        return (self.units - self._owner.count(None)) * self.granularity

    @property
    def offline(self) -> int:
        """Processors offline due to failed psets."""
        return len(self._offline) * self.granularity

    @property
    def free(self) -> int:
        """Processors currently free (possibly fragmented)."""
        return (
            self._owner.count(None) - len(self._offline)
        ) * self.granularity

    def free_runs(self) -> List[Tuple[int, int]]:
        """Maximal free *online* runs as (start unit, length in units).

        Offline psets break runs: a failed pset in the middle of a free
        region splits it, exactly as a dead midplane would on the real
        machine.
        """
        runs: List[Tuple[int, int]] = []
        start = None
        for index, owner in enumerate(self._owner):
            if owner is None and index not in self._offline:
                if start is None:
                    start = index
            elif start is not None:
                runs.append((start, index - start))
                start = None
        if start is not None:
            runs.append((start, self.units - start))
        return runs

    def largest_free_run(self) -> int:
        """Length (units) of the largest contiguous free run."""
        return max((length for _, length in self.free_runs()), default=0)

    def fragmentation(self) -> float:
        """External fragmentation in [0, 1].

        ``1 - largest_free_run / total_free_units``; 0 when all free
        capacity is one run (or none is free).
        """
        free_units = self._owner.count(None) - len(self._offline)
        if free_units <= 0:
            return 0.0
        return 1.0 - self.largest_free_run() / free_units

    def fits_contiguously(self, num: int) -> bool:
        """Whether ``num`` processors fit as one contiguous run now."""
        if num <= 0 or num % self.granularity != 0:
            return False
        return self.largest_free_run() >= num // self.granularity

    def span_of(self, alloc_id: Hashable) -> Optional[Tuple[int, int]]:
        """(start unit, length units) of a live allocation, or None."""
        return self._spans.get(alloc_id)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def allocate(self, alloc_id: Hashable, num: int) -> int:
        """First-fit contiguous allocation; returns the start unit.

        Raises:
            AllocationError: malformed request, duplicate id, or not
                enough total capacity.
            FragmentationError: capacity exists but only fragmented.
        """
        if num <= 0 or num > self.total or num % self.granularity != 0:
            raise AllocationError(
                f"request {num} invalid for machine (total={self.total}, "
                f"granularity={self.granularity})"
            )
        if alloc_id in self._spans:
            raise AllocationError(f"allocation id {alloc_id!r} is already live")
        length = num // self.granularity
        for start, run in self.free_runs():
            if run >= length:
                for index in range(start, start + length):
                    self._owner[index] = alloc_id
                self._spans[alloc_id] = (start, length)
                return start
        if num <= self.free:
            raise FragmentationError(
                f"{num} processors free but largest contiguous run is "
                f"{self.largest_free_run() * self.granularity}"
            )
        raise AllocationError(f"only {self.free} of {self.total} processors free")

    def fail_unit(self, index: int) -> Optional[Hashable]:
        """Take pset ``index`` offline; evict and return its owner.

        As in :meth:`repro.cluster.machine.Machine.fail_unit`, the
        owning allocation (if any) is released in full before the pset
        goes dark.
        """
        if not 0 <= index < self.units:
            raise AllocationError(f"pset index {index} out of range 0..{self.units - 1}")
        if index in self._offline:
            raise AllocationError(f"pset {index} is already offline")
        evicted = self._owner[index]
        if evicted is not None:
            self.release(evicted)
        self._offline.add(index)
        return evicted

    def repair_unit(self, index: int) -> None:
        """Bring pset ``index`` back online."""
        if index not in self._offline:
            raise AllocationError(f"pset {index} is not offline")
        self._offline.remove(index)

    def release(self, alloc_id: Hashable) -> int:
        """Release an allocation; returns its size in processors."""
        try:
            start, length = self._spans.pop(alloc_id)
        except KeyError:
            raise AllocationError(f"allocation id {alloc_id!r} is not live") from None
        for index in range(start, start + length):
            self._owner[index] = None
        return length * self.granularity

    def compact(self) -> int:
        """Defragment by migrating allocations to the lowest indices.

        Models the BlueGene/L migration of Krevat et al. [8]: running
        jobs are slid leftwards (order preserved) so all free psets
        coalesce into one run.  Returns the number of allocations that
        moved (the migration cost proxy).
        """
        if self._offline:
            return self._compact_degraded()
        moved = 0
        cursor = 0
        for alloc_id, (start, length) in sorted(
            self._spans.items(), key=lambda item: item[1][0]
        ):
            if start != cursor:
                for index in range(start, start + length):
                    self._owner[index] = None
                for index in range(cursor, cursor + length):
                    self._owner[index] = alloc_id
                self._spans[alloc_id] = (cursor, length)
                moved += 1
            cursor += length
        return moved

    def _compact_degraded(self) -> int:
        """Compaction around offline psets (first-fit repack).

        Offline psets cannot host migrated allocations, so the simple
        left-slide is replaced by a first-fit repack into online runs.
        When the repack cannot place every allocation (pathological
        fragmentation by failures), the layout is left untouched and 0
        is returned.
        """
        order = sorted(self._spans.items(), key=lambda item: item[1][0])
        owner: List[Optional[Hashable]] = [None] * self.units
        spans: Dict[Hashable, Tuple[int, int]] = {}
        for alloc_id, (_, length) in order:
            placed = False
            run = 0
            for index in range(self.units):
                if owner[index] is None and index not in self._offline:
                    run += 1
                    if run == length:
                        start = index - length + 1
                        for unit in range(start, start + length):
                            owner[unit] = alloc_id
                        spans[alloc_id] = (start, length)
                        placed = True
                        break
                else:
                    run = 0
            if not placed:
                return 0
        moved = sum(
            1 for alloc_id, span in spans.items() if span != self._spans[alloc_id]
        )
        self._owner = owner
        self._spans = spans
        return moved

    def check_invariants(self) -> None:
        """Assert span bookkeeping matches the ownership map."""
        seen = 0
        for alloc_id, (start, length) in self._spans.items():
            assert all(
                self._owner[index] == alloc_id for index in range(start, start + length)
            ), f"span map corrupt for {alloc_id!r}"
            assert all(
                index not in self._offline for index in range(start, start + length)
            ), f"allocation {alloc_id!r} spans an offline pset"
            seen += length
        assert seen == self.units - self._owner.count(None)
        assert all(self._owner[index] is None for index in self._offline)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PartitionedMachine(units={self.units}, live={len(self._spans)}, "
            f"frag={self.fragmentation():.2f})"
        )


__all__ = ["FragmentationError", "PartitionedMachine"]
