"""Machine model for a BlueGene/P-style parallel system.

The paper simulates IBM's BlueGene/P as a flat pool of ``M = 320``
processors allocated in multiples of 32 (one pset).  This subpackage
provides:

- :class:`~repro.cluster.machine.Machine` — capacity-checked
  allocate/release with granularity enforcement,
- :class:`~repro.cluster.accounting.UtilizationTracker` — exact
  integration of busy processor-seconds, from which the paper's mean
  utilization metric is computed.
"""

from repro.cluster.accounting import UtilizationSample, UtilizationTracker
from repro.cluster.machine import AllocationError, Machine
from repro.cluster.partition import FragmentationError, PartitionedMachine

__all__ = [
    "AllocationError",
    "FragmentationError",
    "Machine",
    "PartitionedMachine",
    "UtilizationSample",
    "UtilizationTracker",
]
