"""Exact utilization accounting.

Mean system utilization — the paper's headline metric — is the integral
of busy processors over time divided by ``M * T``.  Because the busy
level is a step function that only changes at allocation events, the
integral is computed exactly (no sampling error) by accumulating
``level * dt`` between consecutive observations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class UtilizationSample:
    """One step of the busy-processor step function.

    ``level`` processors were busy from ``time`` until the time of the
    next sample (or the integration horizon).
    """

    time: float
    level: int


class UtilizationTracker:
    """Integrates busy processor-time from allocation observations.

    The tracker is fed the *new* busy level at every change (see
    :meth:`repro.cluster.machine.Machine.allocate`).  Observations must
    be non-decreasing in time; same-time updates overwrite the level,
    matching the semantics of several releases/allocations happening at
    one simulation instant.
    """

    def __init__(self, start_time: float = 0.0, level: int = 0) -> None:
        self._samples: List[UtilizationSample] = [
            UtilizationSample(float(start_time), int(level))
        ]
        self._busy_area = 0.0  # processor-seconds integrated so far

    # ------------------------------------------------------------------
    @property
    def start_time(self) -> float:
        """Time of the first observation."""
        return self._samples[0].time

    @property
    def last_time(self) -> float:
        """Time of the most recent observation."""
        return self._samples[-1].time

    @property
    def current_level(self) -> int:
        """Busy level after the most recent observation."""
        return self._samples[-1].level

    def observe(self, time: float, level: int) -> None:
        """Record that the busy level became ``level`` at ``time``.

        Raises:
            ValueError: when ``time`` precedes the last observation.
        """
        last = self._samples[-1]
        if time < last.time:
            raise ValueError(
                f"utilization observations must be time-ordered: {time} < {last.time}"
            )
        if time == last.time:
            # Collapse same-instant transitions: only the final level at
            # an instant occupies any measure of time.
            self._samples[-1] = UtilizationSample(time, int(level))
            return
        self._busy_area += last.level * (time - last.time)
        self._samples.append(UtilizationSample(float(time), int(level)))

    # ------------------------------------------------------------------
    def busy_area(self, until: Optional[float] = None) -> float:
        """Busy processor-seconds in ``[start_time, until]``.

        ``until`` defaults to the last observation; it may extend past
        it, in which case the current level is assumed to persist.
        """
        last = self._samples[-1]
        horizon = last.time if until is None else float(until)
        if horizon < last.time:
            # Re-integrate the prefix; rare (tests only), so clarity
            # beats speed here.
            area = 0.0
            for cur, nxt in zip(self._samples, self._samples[1:]):
                if nxt.time >= horizon:
                    area += cur.level * (horizon - cur.time)
                    return area
                area += cur.level * (nxt.time - cur.time)
            return area
        return self._busy_area + last.level * (horizon - last.time)

    def mean_utilization(self, total: int, until: Optional[float] = None) -> float:
        """Mean fraction of ``total`` processors busy over the window.

        Returns 0.0 for a zero-length window (empty experiment).
        """
        horizon = self.last_time if until is None else float(until)
        span = horizon - self.start_time
        if span <= 0 or total <= 0:
            return 0.0
        return self.busy_area(until=horizon) / (total * span)

    def samples(self) -> Tuple[UtilizationSample, ...]:
        """Immutable view of the recorded step function."""
        return tuple(self._samples)

    def peak_level(self) -> int:
        """Maximum busy level observed."""
        return max(s.level for s in self._samples)


__all__ = ["UtilizationSample", "UtilizationTracker"]
