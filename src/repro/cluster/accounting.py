"""Exact utilization accounting in bounded memory.

Mean system utilization — the paper's headline metric — is the integral
of busy processors over time divided by ``M * T``.  Because the busy
level is a step function that only changes at allocation events, the
integral is computed exactly (no sampling error) by accumulating
``level * dt`` between consecutive observations.

The running integral, the current/peak level and the observation
horizon are all O(1) state, so the headline numbers stay exact at any
scale.  The *step-function view* (:meth:`UtilizationTracker.samples`
and prefix-horizon :meth:`UtilizationTracker.busy_area` queries) is
kept in a bounded buffer: past :data:`MAX_SAMPLES` retained points the
buffer is decimated — every other point dropped, retention stride
doubled — exactly like the telemetry series
(:mod:`repro.obs.telemetry`).  Decimation is a pure function of the
observation sequence, so it is deterministic across runs.  Up to the
cap every observation is retained and prefix queries are exact; past
it a prefix query interpolates from the nearest retained point (the
cumulative area stored *at* each retained point stays exact, so the
error never compounds).  Suffix/horizon-extension queries — the ones
every end-of-run metric uses — are always exact.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Tuple

#: Retained step-function points per tracker; above it the buffer is
#: decimated (stride doubling), bounding memory at million-job scale
#: while the integral itself stays exact (docs/scaling.md).
MAX_SAMPLES = 4096


@dataclass(frozen=True)
class UtilizationSample:
    """One step of the busy-processor step function.

    ``level`` processors were busy from ``time`` until the time of the
    next sample (or the integration horizon).
    """

    time: float
    level: int


class UtilizationTracker:
    """Integrates busy processor-time from allocation observations.

    The tracker is fed the *new* busy level at every change (see
    :meth:`repro.cluster.machine.Machine.allocate`).  Observations must
    be non-decreasing in time; same-time updates overwrite the level,
    matching the semantics of several releases/allocations happening at
    one simulation instant.
    """

    # All headline state is scalar; the parallel lists hold only the
    # bounded, decimated step-function view (samples() and prefix
    # busy_area queries).  observe() runs on every allocation/release
    # event, so the fast path is: commit area, maybe retain a point.
    __slots__ = (
        "_start_time",
        "_last_time",
        "_last_level",
        "_busy_area",
        "_peak_committed",
        "_times",
        "_levels",
        "_areas",
        "_stride",
        "_skip",
        "_dropped",
    )

    def __init__(self, start_time: float = 0.0, level: int = 0) -> None:
        t = float(start_time)
        lvl = int(level)
        self._start_time = t
        self._last_time = t
        self._last_level = lvl
        self._busy_area = 0.0  # processor-seconds integrated so far
        # Peak over levels that either occupied time or are current;
        # levels overwritten within one instant never count, matching
        # the same-instant collapse below.
        self._peak_committed = 0
        self._times: List[float] = [t]
        self._levels: List[int] = [lvl]
        self._areas: List[float] = [0.0]  # cumulative area at each point
        self._stride = 1
        self._skip = 0
        self._dropped = 0

    # ------------------------------------------------------------------
    @property
    def start_time(self) -> float:
        """Time of the first observation."""
        return self._start_time

    @property
    def last_time(self) -> float:
        """Time of the most recent observation."""
        return self._last_time

    @property
    def current_level(self) -> int:
        """Busy level after the most recent observation."""
        return self._last_level

    @property
    def samples_dropped(self) -> int:
        """Observations absent from the bounded :meth:`samples` view.

        Counts both stride-skipped observations and points discarded by
        decimation passes.  Zero until the series outgrows
        :data:`MAX_SAMPLES`; the integral is unaffected either way.
        """
        return self._dropped

    def observe(self, time: float, level: int) -> None:
        """Record that the busy level became ``level`` at ``time``.

        Raises:
            ValueError: when ``time`` precedes the last observation.
        """
        last_time = self._last_time
        if time == last_time:
            # Collapse same-instant transitions: only the final level at
            # an instant occupies any measure of time.
            lvl = int(level)
            self._last_level = lvl
            if self._times[-1] == time:
                self._levels[-1] = lvl
            return
        if time < last_time:
            raise ValueError(
                f"utilization observations must be time-ordered: {time} < {last_time}"
            )
        prev_level = self._last_level
        self._busy_area += prev_level * (time - last_time)
        if prev_level > self._peak_committed:
            self._peak_committed = prev_level
        self._last_time = time
        self._last_level = int(level)
        # Bounded step-function view (stride retention + decimation).
        if self._skip:
            self._skip -= 1
            self._dropped += 1
            return
        times = self._times
        times.append(float(time))
        self._levels.append(int(level))
        self._areas.append(self._busy_area)
        if len(times) >= MAX_SAMPLES:
            dropped = len(times) // 2
            del times[1::2]
            del self._levels[1::2]
            del self._areas[1::2]
            self._dropped += dropped
            self._stride *= 2
        self._skip = self._stride - 1

    # ------------------------------------------------------------------
    def busy_area(self, until: Optional[float] = None) -> float:
        """Busy processor-seconds in ``[start_time, until]``.

        ``until`` defaults to the last observation; it may extend past
        it, in which case the current level is assumed to persist.
        Horizons *before* the last observation answer from the retained
        step points — exact while every observation is retained (under
        :data:`MAX_SAMPLES`), nearest-retained-point extrapolation
        afterwards; the stored cumulative areas keep the error local.
        """
        last_time = self._last_time
        horizon = last_time if until is None else float(until)
        if horizon >= last_time:
            return self._busy_area + self._last_level * (horizon - last_time)
        index = bisect.bisect_right(self._times, horizon) - 1
        if index < 0:
            return 0.0
        return self._areas[index] + self._levels[index] * (horizon - self._times[index])

    def mean_utilization(self, total: int, until: Optional[float] = None) -> float:
        """Mean fraction of ``total`` processors busy over the window.

        Returns 0.0 for a zero-length window (empty experiment).
        """
        horizon = self._last_time if until is None else float(until)
        span = horizon - self._start_time
        if span <= 0 or total <= 0:
            return 0.0
        return self.busy_area(until=horizon) / (total * span)

    def samples(self) -> Tuple[UtilizationSample, ...]:
        """Immutable (possibly decimated) view of the step function.

        The most recent observation is always included, so the view
        ends at :attr:`last_time` / :attr:`current_level` even when the
        stride skipped it.
        """
        out = [
            UtilizationSample(time, level)
            for time, level in zip(self._times, self._levels)
        ]
        if self._times[-1] != self._last_time:
            out.append(UtilizationSample(self._last_time, self._last_level))
        return tuple(out)

    def peak_level(self) -> int:
        """Maximum busy level observed (exact; never decimated away)."""
        last = self._last_level
        committed = self._peak_committed
        return last if last > committed else committed


__all__ = ["MAX_SAMPLES", "UtilizationSample", "UtilizationTracker"]
