"""Exact utilization accounting.

Mean system utilization — the paper's headline metric — is the integral
of busy processors over time divided by ``M * T``.  Because the busy
level is a step function that only changes at allocation events, the
integral is computed exactly (no sampling error) by accumulating
``level * dt`` between consecutive observations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class UtilizationSample:
    """One step of the busy-processor step function.

    ``level`` processors were busy from ``time`` until the time of the
    next sample (or the integration horizon).
    """

    time: float
    level: int


class UtilizationTracker:
    """Integrates busy processor-time from allocation observations.

    The tracker is fed the *new* busy level at every change (see
    :meth:`repro.cluster.machine.Machine.allocate`).  Observations must
    be non-decreasing in time; same-time updates overwrite the level,
    matching the semantics of several releases/allocations happening at
    one simulation instant.
    """

    # Internally the step function lives in two parallel lists (times,
    # levels): observe() runs on every allocation/release event, and
    # appending plain floats/ints there is measurably cheaper than
    # instantiating a dataclass per observation.  samples() materializes
    # the UtilizationSample view on demand.
    def __init__(self, start_time: float = 0.0, level: int = 0) -> None:
        self._times: List[float] = [float(start_time)]
        self._levels: List[int] = [int(level)]
        self._busy_area = 0.0  # processor-seconds integrated so far

    # ------------------------------------------------------------------
    @property
    def start_time(self) -> float:
        """Time of the first observation."""
        return self._times[0]

    @property
    def last_time(self) -> float:
        """Time of the most recent observation."""
        return self._times[-1]

    @property
    def current_level(self) -> int:
        """Busy level after the most recent observation."""
        return self._levels[-1]

    def observe(self, time: float, level: int) -> None:
        """Record that the busy level became ``level`` at ``time``.

        Raises:
            ValueError: when ``time`` precedes the last observation.
        """
        times = self._times
        last_time = times[-1]
        if time == last_time:
            # Collapse same-instant transitions: only the final level at
            # an instant occupies any measure of time.
            self._levels[-1] = int(level)
            return
        if time < last_time:
            raise ValueError(
                f"utilization observations must be time-ordered: {time} < {last_time}"
            )
        self._busy_area += self._levels[-1] * (time - last_time)
        times.append(float(time))
        self._levels.append(int(level))

    # ------------------------------------------------------------------
    def busy_area(self, until: Optional[float] = None) -> float:
        """Busy processor-seconds in ``[start_time, until]``.

        ``until`` defaults to the last observation; it may extend past
        it, in which case the current level is assumed to persist.
        """
        last_time = self._times[-1]
        horizon = last_time if until is None else float(until)
        if horizon < last_time:
            # Re-integrate the prefix; rare (tests only), so clarity
            # beats speed here.
            area = 0.0
            for index in range(len(self._times) - 1):
                cur_time = self._times[index]
                nxt_time = self._times[index + 1]
                level = self._levels[index]
                if nxt_time >= horizon:
                    area += level * (horizon - cur_time)
                    return area
                area += level * (nxt_time - cur_time)
            return area
        return self._busy_area + self._levels[-1] * (horizon - last_time)

    def mean_utilization(self, total: int, until: Optional[float] = None) -> float:
        """Mean fraction of ``total`` processors busy over the window.

        Returns 0.0 for a zero-length window (empty experiment).
        """
        horizon = self.last_time if until is None else float(until)
        span = horizon - self.start_time
        if span <= 0 or total <= 0:
            return 0.0
        return self.busy_area(until=horizon) / (total * span)

    def samples(self) -> Tuple[UtilizationSample, ...]:
        """Immutable view of the recorded step function."""
        return tuple(
            UtilizationSample(time, level)
            for time, level in zip(self._times, self._levels)
        )

    def peak_level(self) -> int:
        """Maximum busy level observed."""
        return max(self._levels)


__all__ = ["UtilizationSample", "UtilizationTracker"]
