"""Capacity model of the simulated parallel machine.

The paper's testbed is a simulated BlueGene/P with 320 processors where
"only integer multiples of 32 processors can be assigned to jobs"
(§IV-A).  :class:`Machine` models exactly that: a flat processor pool
with a hard allocation granularity.  No torus topology or contiguity is
modelled because the paper does not model it either (see DESIGN.md §2).

Fault support (docs/resilience.md): with ``track_placement=True`` the
machine additionally assigns every allocation to concrete psets
(granularity units), so a pset can be *failed* — evicting whichever
allocation holds it and shrinking available capacity until the
matching repair.  Placement tracking is off by default; the fault-free
hot path is unchanged.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set

from repro.cluster.accounting import UtilizationTracker


class AllocationError(RuntimeError):
    """Raised on invalid allocate/release requests.

    These always indicate a scheduler bug (double start, capacity
    overflow, wrong granularity), so they are loud rather than soft.
    """


class Machine:
    """A parallel machine with granular, capacity-checked allocation.

    Args:
        total: Total number of processors (the paper's ``M``).
        granularity: Allocation unit in processors (32 on BlueGene/P).
            Every request must be a positive multiple of this.
        tracker: Optional utilization tracker; when provided, every
            allocation change is recorded so mean utilization can be
            integrated exactly.
        track_placement: Assign allocations to concrete psets so that
            :meth:`fail_unit` / :meth:`repair_unit` can take psets
            offline and evict overlapping jobs.  Off by default; the
            fault-free path carries no placement bookkeeping.

    Invariants (enforced on every call):
        * ``0 <= used <= available <= total``
        * every live allocation is a positive multiple of ``granularity``
        * allocation ids are unique among live allocations
        * (placement) owned psets exactly cover the allocations and
          never intersect the offline set
    """

    def __init__(
        self,
        total: int,
        granularity: int = 1,
        tracker: Optional[UtilizationTracker] = None,
        track_placement: bool = False,
    ) -> None:
        if total <= 0:
            raise ValueError(f"machine size must be positive, got {total}")
        if granularity <= 0:
            raise ValueError(f"granularity must be positive, got {granularity}")
        if total % granularity != 0:
            raise ValueError(
                f"machine size {total} is not a multiple of granularity {granularity}"
            )
        self.total = int(total)
        self.granularity = int(granularity)
        self.tracker = tracker
        self._allocations: Dict[Hashable, int] = {}
        self._used = 0
        # --- placement / fault state (only populated when tracking) ---
        self.track_placement = bool(track_placement)
        #: pset index -> owning allocation id (None = free); empty
        #: list when placement is untracked.
        self._unit_owner: List[Optional[Hashable]] = (
            [None] * (self.total // self.granularity) if track_placement else []
        )
        self._unit_of: Dict[Hashable, List[int]] = {}
        self._offline: Set[int] = set()
        self._offline_procs = 0
        # Degraded-time integral: accumulated seconds with >= 1 pset
        # offline, plus the open segment's start (None when healthy).
        self._degraded_accum = 0.0
        self._degraded_since: Optional[float] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def used(self) -> int:
        """Processors currently allocated."""
        return self._used

    @property
    def offline(self) -> int:
        """Processors currently offline due to failed psets (0 when healthy).

        Kept as a plain counter (updated by fail/repair) rather than
        ``len(set) * granularity``: schedulers read free/available on
        every cycle pass, making this one of the hottest attributes in
        a simulation.
        """
        return self._offline_procs

    @property
    def available(self) -> int:
        """Processors not offline (``total`` on a healthy machine)."""
        return self.total - self._offline_procs

    @property
    def degraded(self) -> bool:
        """Whether at least one pset is currently offline."""
        return bool(self._offline)

    @property
    def free(self) -> int:
        """Processors currently free (the paper's ``m``).

        Offline psets are neither free nor used: ``free = total −
        offline − used``.
        """
        return self.total - self._offline_procs - self._used

    @property
    def units(self) -> int:
        """Machine size expressed in granularity units."""
        return self.total // self.granularity

    def free_units(self) -> int:
        """Free capacity in granularity units (exact by invariant)."""
        return self.free // self.granularity

    def holds(self, alloc_id: Hashable) -> bool:
        """Whether ``alloc_id`` currently owns processors."""
        return alloc_id in self._allocations

    def allocation_of(self, alloc_id: Hashable) -> int:
        """Processor count owned by ``alloc_id`` (0 when absent)."""
        return self._allocations.get(alloc_id, 0)

    def live_allocations(self) -> Dict[Hashable, int]:
        """Snapshot of live allocations (id -> processors)."""
        return dict(self._allocations)

    def fits(self, num: int) -> bool:
        """Whether a request of ``num`` processors fits right now."""
        return 0 < num <= self.free

    def validate_request(self, num: int) -> None:
        """Raise :class:`AllocationError` when ``num`` is malformed.

        A request is malformed if it is non-positive, exceeds the
        machine, or is not a multiple of the granularity.  Malformed
        requests can never be satisfied at any time, so workloads are
        validated eagerly at load time.
        """
        if num <= 0:
            raise AllocationError(f"request must be positive, got {num}")
        if num > self.total:
            raise AllocationError(f"request {num} exceeds machine size {self.total}")
        if num % self.granularity != 0:
            raise AllocationError(
                f"request {num} violates allocation granularity {self.granularity}"
            )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def allocate(self, alloc_id: Hashable, num: int, time: float = 0.0) -> None:
        """Allocate ``num`` processors to ``alloc_id`` at ``time``.

        Raises:
            AllocationError: on malformed requests, duplicate ids, or
                insufficient free capacity.
        """
        self.validate_request(num)
        if alloc_id in self._allocations:
            raise AllocationError(f"allocation id {alloc_id!r} is already live")
        if num > self.free:
            raise AllocationError(
                f"cannot allocate {num} processors; only {self.free} free of {self.total}"
                + (f" ({self.offline} offline)" if self._offline else "")
            )
        self._allocations[alloc_id] = num
        self._used += num
        if self.track_placement:
            self._place(alloc_id, num // self.granularity)
        if self.tracker is not None:
            self.tracker.observe(time, self._used)

    def resize(self, alloc_id: Hashable, new_num: int, time: float = 0.0) -> int:
        """Resize a live allocation in place; returns its previous size.

        The malleability primitive (docs/malleability.md): a running
        job shrinks or grows without releasing its allocation id.
        Shrinking frees the highest-indexed psets of the allocation
        (placement tracking); growing claims free online psets
        first-fit, like :meth:`allocate`.

        Raises:
            AllocationError: when ``alloc_id`` is not live, ``new_num``
                is malformed, or growth exceeds the free capacity.
        """
        self.validate_request(new_num)
        old_num = self._allocations.get(alloc_id)
        if old_num is None:
            raise AllocationError(f"allocation id {alloc_id!r} is not live")
        delta = new_num - old_num
        if delta == 0:
            return old_num
        if delta > self.free:
            raise AllocationError(
                f"cannot grow {alloc_id!r} by {delta} processors; "
                f"only {self.free} free of {self.total}"
                + (f" ({self.offline} offline)" if self._offline else "")
            )
        self._allocations[alloc_id] = new_num
        self._used += delta
        if self.track_placement:
            if delta > 0:
                extra = delta // self.granularity
                chosen: List[int] = []
                for index, owner in enumerate(self._unit_owner):
                    if owner is None and index not in self._offline:
                        chosen.append(index)
                        if len(chosen) == extra:
                            break
                assert len(chosen) == extra, (alloc_id, extra, chosen)
                for index in chosen:
                    self._unit_owner[index] = alloc_id
                self._unit_of[alloc_id].extend(chosen)
            else:
                drop = (-delta) // self.granularity
                units = self._unit_of[alloc_id]
                for index in units[len(units) - drop:]:
                    self._unit_owner[index] = None
                del units[len(units) - drop:]
        if self.tracker is not None:
            self.tracker.observe(time, self._used)
        return old_num

    def release(self, alloc_id: Hashable, time: float = 0.0) -> int:
        """Release the allocation held by ``alloc_id``; returns its size.

        Raises:
            AllocationError: when ``alloc_id`` holds no allocation.
        """
        try:
            num = self._allocations.pop(alloc_id)
        except KeyError:
            raise AllocationError(f"allocation id {alloc_id!r} is not live") from None
        self._used -= num
        if self.track_placement:
            for index in self._unit_of.pop(alloc_id, ()):
                self._unit_owner[index] = None
        if self.tracker is not None:
            self.tracker.observe(time, self._used)
        return num

    # ------------------------------------------------------------------
    # Faults (placement tracking required)
    # ------------------------------------------------------------------
    def _place(self, alloc_id: Hashable, n_units: int) -> None:
        """Assign the lowest-indexed free online psets (first-fit)."""
        chosen: List[int] = []
        for index, owner in enumerate(self._unit_owner):
            if owner is None and index not in self._offline:
                chosen.append(index)
                if len(chosen) == n_units:
                    break
        # free-capacity check already passed, so enough psets exist
        assert len(chosen) == n_units, (alloc_id, n_units, chosen)
        for index in chosen:
            self._unit_owner[index] = alloc_id
        self._unit_of[alloc_id] = chosen

    def _require_placement(self) -> None:
        if not self.track_placement:
            raise AllocationError(
                "pset faults need Machine(track_placement=True)"
            )

    def online_units(self) -> List[int]:
        """Indices of psets currently online (sorted)."""
        self._require_placement()
        return [i for i in range(self.units) if i not in self._offline]

    def owner_of_unit(self, index: int) -> Optional[Hashable]:
        """Allocation id holding pset ``index`` (None when free)."""
        self._require_placement()
        return self._unit_owner[index]

    def fail_unit(self, index: int, time: float = 0.0) -> Optional[Hashable]:
        """Take pset ``index`` offline; evict and return its owner.

        The owning allocation (if any) is released *in full* — a job
        cannot keep running on a partially failed allocation — and its
        id is returned so the caller can requeue or fail the job.
        Capacity shrinks by one granularity unit until
        :meth:`repair_unit`.

        Raises:
            AllocationError: placement untracked, index out of range,
                or pset already offline.
        """
        self._require_placement()
        if not 0 <= index < self.units:
            raise AllocationError(f"pset index {index} out of range 0..{self.units - 1}")
        if index in self._offline:
            raise AllocationError(f"pset {index} is already offline")
        evicted = self._unit_owner[index]
        if evicted is not None:
            self.release(evicted, time=time)
        if not self._offline:
            self._degraded_since = time
        self._offline.add(index)
        self._offline_procs += self.granularity
        return evicted

    def repair_unit(self, index: int, time: float = 0.0) -> None:
        """Bring pset ``index`` back online.

        Raises:
            AllocationError: when the pset is not offline.
        """
        self._require_placement()
        if index not in self._offline:
            raise AllocationError(f"pset {index} is not offline")
        self._offline.remove(index)
        self._offline_procs -= self.granularity
        if not self._offline:
            assert self._degraded_since is not None
            self._degraded_accum += max(0.0, time - self._degraded_since)
            self._degraded_since = None

    def degraded_time(self, until: float) -> float:
        """Total seconds with >= 1 pset offline, up to ``until``."""
        extra = 0.0
        if self._degraded_since is not None and until > self._degraded_since:
            extra = until - self._degraded_since
        return self._degraded_accum + extra

    def check_invariants(self) -> None:
        """Assert internal consistency (used by property tests)."""
        assert 0 <= self._used <= self.available <= self.total, (
            self._used,
            self.offline,
            self.total,
        )
        assert self._offline_procs == len(self._offline) * self.granularity, (
            self._offline_procs,
            self._offline,
        )
        assert self._used == sum(self._allocations.values())
        for alloc_id, num in self._allocations.items():
            assert num > 0 and num % self.granularity == 0, (alloc_id, num)
        if self.track_placement:
            owned = {
                alloc_id: len(units) * self.granularity
                for alloc_id, units in self._unit_of.items()
            }
            assert owned == dict(self._allocations), (owned, self._allocations)
            for alloc_id, units in self._unit_of.items():
                for index in units:
                    assert self._unit_owner[index] == alloc_id, (alloc_id, index)
                    assert index not in self._offline, (alloc_id, index)
            n_owned = sum(1 for owner in self._unit_owner if owner is not None)
            assert n_owned * self.granularity == self._used, (n_owned, self._used)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        degraded = f", offline={self.offline}" if self._offline else ""
        return (
            f"Machine(total={self.total}, granularity={self.granularity}, "
            f"used={self._used}, live={len(self._allocations)}{degraded})"
        )


__all__ = ["AllocationError", "Machine"]
