"""Capacity model of the simulated parallel machine.

The paper's testbed is a simulated BlueGene/P with 320 processors where
"only integer multiples of 32 processors can be assigned to jobs"
(§IV-A).  :class:`Machine` models exactly that: a flat processor pool
with a hard allocation granularity.  No torus topology or contiguity is
modelled because the paper does not model it either (see DESIGN.md §2).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.cluster.accounting import UtilizationTracker


class AllocationError(RuntimeError):
    """Raised on invalid allocate/release requests.

    These always indicate a scheduler bug (double start, capacity
    overflow, wrong granularity), so they are loud rather than soft.
    """


class Machine:
    """A parallel machine with granular, capacity-checked allocation.

    Args:
        total: Total number of processors (the paper's ``M``).
        granularity: Allocation unit in processors (32 on BlueGene/P).
            Every request must be a positive multiple of this.
        tracker: Optional utilization tracker; when provided, every
            allocation change is recorded so mean utilization can be
            integrated exactly.

    Invariants (enforced on every call):
        * ``0 <= used <= total``
        * every live allocation is a positive multiple of ``granularity``
        * allocation ids are unique among live allocations
    """

    def __init__(
        self,
        total: int,
        granularity: int = 1,
        tracker: Optional[UtilizationTracker] = None,
    ) -> None:
        if total <= 0:
            raise ValueError(f"machine size must be positive, got {total}")
        if granularity <= 0:
            raise ValueError(f"granularity must be positive, got {granularity}")
        if total % granularity != 0:
            raise ValueError(
                f"machine size {total} is not a multiple of granularity {granularity}"
            )
        self.total = int(total)
        self.granularity = int(granularity)
        self.tracker = tracker
        self._allocations: Dict[Hashable, int] = {}
        self._used = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def used(self) -> int:
        """Processors currently allocated."""
        return self._used

    @property
    def free(self) -> int:
        """Processors currently free (the paper's ``m``)."""
        return self.total - self._used

    @property
    def units(self) -> int:
        """Machine size expressed in granularity units."""
        return self.total // self.granularity

    def free_units(self) -> int:
        """Free capacity in granularity units (exact by invariant)."""
        return self.free // self.granularity

    def holds(self, alloc_id: Hashable) -> bool:
        """Whether ``alloc_id`` currently owns processors."""
        return alloc_id in self._allocations

    def allocation_of(self, alloc_id: Hashable) -> int:
        """Processor count owned by ``alloc_id`` (0 when absent)."""
        return self._allocations.get(alloc_id, 0)

    def live_allocations(self) -> Dict[Hashable, int]:
        """Snapshot of live allocations (id -> processors)."""
        return dict(self._allocations)

    def fits(self, num: int) -> bool:
        """Whether a request of ``num`` processors fits right now."""
        return 0 < num <= self.free

    def validate_request(self, num: int) -> None:
        """Raise :class:`AllocationError` when ``num`` is malformed.

        A request is malformed if it is non-positive, exceeds the
        machine, or is not a multiple of the granularity.  Malformed
        requests can never be satisfied at any time, so workloads are
        validated eagerly at load time.
        """
        if num <= 0:
            raise AllocationError(f"request must be positive, got {num}")
        if num > self.total:
            raise AllocationError(f"request {num} exceeds machine size {self.total}")
        if num % self.granularity != 0:
            raise AllocationError(
                f"request {num} violates allocation granularity {self.granularity}"
            )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def allocate(self, alloc_id: Hashable, num: int, time: float = 0.0) -> None:
        """Allocate ``num`` processors to ``alloc_id`` at ``time``.

        Raises:
            AllocationError: on malformed requests, duplicate ids, or
                insufficient free capacity.
        """
        self.validate_request(num)
        if alloc_id in self._allocations:
            raise AllocationError(f"allocation id {alloc_id!r} is already live")
        if num > self.free:
            raise AllocationError(
                f"cannot allocate {num} processors; only {self.free} free of {self.total}"
            )
        self._allocations[alloc_id] = num
        self._used += num
        if self.tracker is not None:
            self.tracker.observe(time, self._used)

    def release(self, alloc_id: Hashable, time: float = 0.0) -> int:
        """Release the allocation held by ``alloc_id``; returns its size.

        Raises:
            AllocationError: when ``alloc_id`` holds no allocation.
        """
        try:
            num = self._allocations.pop(alloc_id)
        except KeyError:
            raise AllocationError(f"allocation id {alloc_id!r} is not live") from None
        self._used -= num
        if self.tracker is not None:
            self.tracker.observe(time, self._used)
        return num

    def check_invariants(self) -> None:
        """Assert internal consistency (used by property tests)."""
        assert 0 <= self._used <= self.total, (self._used, self.total)
        assert self._used == sum(self._allocations.values())
        for alloc_id, num in self._allocations.items():
            assert num > 0 and num % self.granularity == 0, (alloc_id, num)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine(total={self.total}, granularity={self.granularity}, "
            f"used={self._used}, live={len(self._allocations)})"
        )


__all__ = ["AllocationError", "Machine"]
