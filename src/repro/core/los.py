"""LOS — the Lookahead Optimizing Scheduler of Shmueli & Feitelson [7].

The baseline the paper improves on.  LOS-with-reservations (Algorithm
3 in [7]) starts the head job *right away* whenever enough capacity is
available (bounding its wait), and when it does not fit makes a
reservation at the shadow time and runs the two-dimensional DP to fill
the holes without delaying the reservation.

That is precisely Algorithm 1 of the paper with ``C_s = 0``: the
``scount >= C_s`` branch always fires when the head fits, so
``Basic_DP`` is never consulted and the reservation branch is
untouched.  We therefore implement LOS as :class:`DelayedLOS` pinned
to a zero skip threshold — one audited code path for the whole family
(DESIGN.md §4).
"""

from __future__ import annotations

from typing import Optional

from repro.core.delayed_los import DelayedLOS
from repro.core.dp import DEFAULT_LOOKAHEAD


class LOS(DelayedLOS):
    """LOS [7]: head-first activation + reservation DP backfilling."""

    name = "LOS"

    def __init__(
        self,
        lookahead: Optional[int] = DEFAULT_LOOKAHEAD,
        elastic: bool = False,
    ) -> None:
        super().__init__(max_skip_count=0, lookahead=lookahead, elastic=elastic)


__all__ = ["LOS"]
