"""Adaptive algorithm selection — the paper's §V-A suggestion.

Figure 8's observation: with many small jobs (high ``P_S``) EASY and
Delayed-LOS perform alike, while with many large jobs Delayed-LOS's DP
packing wins clearly.  The paper concludes:

    "This observation can lead to design of a dynamic, algorithm
    selection policy that selects the best performing algorithm among
    Delayed-LOS and EASY, for different proportions of small and large
    sized jobs in a parallel processing system."

:class:`AdaptiveSelector` implements exactly that policy: it observes
the small-job share among the jobs currently visible to the scheduler
(waiting + running), and delegates each cycle to EASY when small jobs
dominate (cheap, plenty of backfill opportunities) or to Delayed-LOS
when large jobs make packing quality decisive.  Hysteresis prevents
thrashing at the boundary.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import CycleDecision, Scheduler, SchedulerContext
from repro.core.delayed_los import DelayedLOS
from repro.core.dp import DEFAULT_LOOKAHEAD
from repro.core.easy import EasyBackfill


class AdaptiveSelector(Scheduler):
    """Delegates to EASY or Delayed-LOS based on the observed job mix.

    Args:
        small_threshold: Jobs of at most this many processors count as
            small (96 = the paper's boundary on BlueGene/P).
        switch_share: Small-job share above which EASY is selected.
        hysteresis: Dead band around ``switch_share`` — the selector
            keeps its current delegate while the share stays within
            ``switch_share ± hysteresis``.
        max_skip_count: ``C_s`` for the Delayed-LOS delegate.
        lookahead: DP window for the Delayed-LOS delegate.
    """

    name = "ADAPTIVE"

    def __init__(
        self,
        small_threshold: int = 96,
        switch_share: float = 0.7,
        hysteresis: float = 0.05,
        max_skip_count: int = 7,
        lookahead: Optional[int] = DEFAULT_LOOKAHEAD,
        elastic: bool = False,
    ) -> None:
        if not 0.0 <= switch_share <= 1.0:
            raise ValueError(f"switch_share must be a probability, got {switch_share}")
        if hysteresis < 0.0:
            raise ValueError(f"hysteresis must be non-negative, got {hysteresis}")
        super().__init__(elastic=elastic)
        self.small_threshold = int(small_threshold)
        self.switch_share = float(switch_share)
        self.hysteresis = float(hysteresis)
        self._easy = EasyBackfill()
        self._delayed = DelayedLOS(max_skip_count=max_skip_count, lookahead=lookahead)
        self._current: Scheduler = self._delayed
        self.switches = 0  # diagnostic: delegate changes over the run

    # ------------------------------------------------------------------
    def small_job_share(self, ctx: SchedulerContext) -> float:
        """Share of small jobs among waiting + running jobs."""
        sizes = [job.num for job in ctx.batch_queue] + [job.num for job in ctx.active]
        if not sizes:
            return 1.0
        return sum(1 for num in sizes if num <= self.small_threshold) / len(sizes)

    def _select(self, ctx: SchedulerContext) -> Scheduler:
        share = self.small_job_share(ctx)
        if self._current is self._easy:
            wanted = self._easy if share >= self.switch_share - self.hysteresis else self._delayed
        else:
            wanted = self._easy if share >= self.switch_share + self.hysteresis else self._delayed
        if wanted is not self._current:
            self.switches += 1
            self._current = wanted
        return wanted

    @property
    def current_delegate(self) -> str:
        """Name of the currently selected delegate (diagnostics)."""
        return self._current.name

    def memo_token(self) -> object:
        # The hysteresis makes delegate choice depend on the *current*
        # delegate, so elision fingerprints must carry it.
        return self._current.name

    def cycle(self, ctx: SchedulerContext) -> CycleDecision:
        return self._select(ctx).cycle(ctx)


__all__ = ["AdaptiveSelector"]
