"""Delayed-LOS — Algorithm 1 of the paper.

The paper's first contribution: LOS starts the head job *immediately*
whenever it fits, which is "too aggressive" — Figure 2's example shows
a 7-processor head beating a {4, 6} pair on a 10-processor machine.
Delayed-LOS lets ``Basic_DP`` pick the utilization-maximizing set and
only falls back to starting the head unconditionally after the head
has been skipped ``C_s`` times (the *maximum skip count* threshold):

- head fits and ``scount >= C_s`` → activate the head right away
  (lines 3–5),
- head fits and ``scount < C_s`` → ``Basic_DP``; skipping the head
  increments ``scount`` (lines 6–11),
- head does not fit → batch-head reservation + ``Reservation_DP``
  (lines 12–20), exactly as LOS.

``C_s = 0`` degenerates to LOS itself (see :mod:`repro.core.los`).
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import (
    REASON_DP_EXCLUDED,
    REASON_INSUFFICIENT,
    CycleDecision,
    Scheduler,
    SchedulerContext,
)
from repro.core.dp import DEFAULT_LOOKAHEAD, basic_dp_select, reservation_dp_select
from repro.core.freeze import batch_head_freeze


class DelayedLOS(Scheduler):
    """Algorithm 1: Delayed_LOS_Batch_Scheduler.

    Args:
        max_skip_count: The paper's ``C_s`` threshold.  §V-A finds an
            optimum around 7–8 for ``P_S = 0.5`` workloads; the knee
            shifts to ~3 for small-job-heavy mixes (``P_S = 0.8``).
        lookahead: DP queue window (50 in [7]).
        elastic: Append the ECC processor ("Delayed-LOS-E").
    """

    name = "Delayed-LOS"

    def __init__(
        self,
        max_skip_count: int = 7,
        lookahead: Optional[int] = DEFAULT_LOOKAHEAD,
        elastic: bool = False,
    ) -> None:
        if max_skip_count < 0:
            raise ValueError(f"C_s must be non-negative, got {max_skip_count}")
        super().__init__(elastic=elastic)
        self.max_skip_count = int(max_skip_count)
        self.lookahead = lookahead

    # ------------------------------------------------------------------
    def cycle(self, ctx: SchedulerContext) -> CycleDecision:
        """One pass of Algorithm 1 (the runner loops to fix-point)."""
        m = ctx.free
        batch = ctx.batch_queue
        if m <= 0 or not batch:
            return CycleDecision.nothing()
        head = batch.head
        assert head is not None

        if head.num <= m:
            if head.scount >= self.max_skip_count:
                # Lines 3-5: the head has been skipped C_s times; bound
                # its waiting time by activating it right away.
                return CycleDecision(starts=[head])
            # Lines 6-11: pack for maximum instantaneous utilization.
            selection = basic_dp_select(
                batch,
                m,
                granularity=ctx.machine.granularity,
                lookahead=self.lookahead,
                memo=ctx.memo,
            )
            if not selection.head_selected:
                if ctx.allow_scount_increment:
                    head.scount += 1
                if ctx.explain is not None:
                    ctx.explain(head, REASON_DP_EXCLUDED)
            return CycleDecision(starts=selection.jobs)

        # Lines 12-20: head cannot fit; reserve it at the freeze end
        # time and fill the holes without overrunning the reservation.
        if ctx.explain is not None:
            ctx.explain(head, REASON_INSUFFICIENT)
        freeze = batch_head_freeze(ctx, head)
        selection = reservation_dp_select(
            ctx.batch_queue,
            m,
            freeze_capacity=freeze.frec,
            freeze_time=freeze.fret,
            now=ctx.now,
            granularity=ctx.machine.granularity,
            lookahead=self.lookahead,
            memo=ctx.memo,
        )
        return CycleDecision(starts=selection.jobs)


__all__ = ["DelayedLOS"]
