"""``Basic_DP`` and ``Reservation_DP`` — the LOS dynamic programs [7].

Both solve exact 0/1 knapsacks that pick a set of waiting jobs
maximizing *instantaneous utilization* (the sum of selected job sizes):

``basic_dp``
    one capacity dimension — the free processors ``m`` right now.

``reservation_dp``
    two capacity dimensions — free processors now, and the "freeze end
    capacity" ``frec`` available at the freeze end time ``fret``
    (the *shadow time/capacity* of [7]).  A selected job consumes
    freeze capacity only if it would still be running at ``fret``:
    ``frenum = 0 if t + dur < fret else num`` (Algorithm 1 line 16).

Exactness is affordable because capacities shrink by the allocation
granularity (10 units on the 320-processor BlueGene/P with 32-processor
psets) and the lookahead is bounded (50 jobs in [7]).  The 2-D table is
vectorized with NumPy — the per-job update is a shifted ``maximum`` —
and the selected set is reconstructed by an *incremental backtrack*:
each candidate records only the cells it improved (and their previous
values), and the backtrack undoes those deltas one candidate at a time
to recover the before-table it needs.  This is exactly equivalent to
the snapshot-per-candidate formulation but stores sparse deltas
instead of full table copies, which matters because the DP runs once
per scheduling cycle on the hot path.

Tie-breaking: when several sets achieve maximal utilization, the
reconstruction prefers jobs *closer to the head of the queue* (a later
job is skipped whenever the same value is achievable without it),
which keeps the policies as FCFS-faithful as packing allows.
"""

from __future__ import annotations

from itertools import islice
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.telemetry import bump
from repro.workload.job import Job

#: Lookahead bound of [7]: the DP examines at most this many waiting
#: jobs per cycle, which the authors showed loses almost no packing
#: efficiency while bounding runtime.
DEFAULT_LOOKAHEAD = 50


def _eligible(jobs: Sequence[Job], free: int, lookahead: Optional[int]) -> List[Job]:
    """Candidate set: the first ``lookahead`` queued jobs that fit ``m``.

    Single pass over the (bounded) window — no intermediate copies of
    the full queue; this runs every scheduling cycle.
    """
    window = jobs if lookahead is None else islice(jobs, lookahead)
    return [job for job in window if job.num <= free]


def basic_dp(
    jobs: Sequence[Job],
    free: int,
    granularity: int = 1,
    lookahead: Optional[int] = DEFAULT_LOOKAHEAD,
) -> List[Job]:
    """Select waiting jobs maximizing utilization within ``free``.

    Args:
        jobs: Waiting queue in FIFO order (``W^b``).
        free: Free processors ``m``.
        granularity: Allocation unit; all sizes and ``free`` are
            multiples of it by machine invariant.
        lookahead: Max queue prefix examined (None = unbounded).

    Returns:
        The selected set ``S`` in queue order.  Empty when nothing fits.

    >>> from repro.workload.job import Job
    >>> queue = [Job(job_id=i, submit=0.0, num=n, estimate=60.0)
    ...          for i, n in [(1, 7), (2, 4), (3, 6)]]
    >>> [job.num for job in basic_dp(queue, free=10)]   # Figure 2: {4, 6}
    [4, 6]
    """
    if free <= 0:
        return []
    candidates = _eligible(jobs, free, lookahead)
    if not candidates:
        return []
    capacity = free // granularity
    sizes = [job.num // granularity for job in candidates]
    values = [job.num for job in candidates]

    dp = np.zeros(capacity + 1, dtype=np.int64)
    shifted = np.empty_like(dp)
    # Per candidate: the cells it improved and their previous values,
    # so the backtrack can undo updates instead of copying the table.
    undo: List[Tuple[np.ndarray, np.ndarray]] = []
    cells_touched = 0
    for size, value in zip(sizes, values):
        shifted.fill(-1)
        np.add(dp[: capacity + 1 - size], value, out=shifted[size:])
        improved = np.nonzero(shifted > dp)[0]
        cells_touched += improved.size
        undo.append((improved, dp[improved]))
        dp[improved] = shifted[improved]
    bump("dp_cells", int(cells_touched))
    bump("dp_invocations")

    selected: List[Job] = []
    c = capacity
    v = int(dp[c])
    for index in range(len(candidates) - 1, -1, -1):
        cells, previous = undo[index]
        dp[cells] = previous  # dp is now the table *before* this candidate
        if int(dp[c]) == v:
            continue  # same value achievable without this (later) job
        selected.append(candidates[index])
        c -= sizes[index]
        v -= values[index]
        assert c >= 0 and int(dp[c]) == v, "DP backtrack corrupted"
    selected.reverse()
    return selected


def reservation_dp(
    jobs: Sequence[Job],
    free: int,
    freeze_capacity: int,
    freeze_time: float,
    now: float,
    granularity: int = 1,
    lookahead: Optional[int] = DEFAULT_LOOKAHEAD,
) -> List[Job]:
    """Select jobs maximizing utilization around a freeze reservation.

    Implements ``Reservation_DP(frec)``: maximize ``Σ num`` subject to

    - ``Σ num <= free`` (processors available now), and
    - ``Σ frenum <= freeze_capacity`` where ``frenum`` is ``num`` for
      jobs whose estimated end ``now + dur`` reaches the freeze end
      time ``freeze_time``, else 0.

    Args:
        jobs: Waiting queue in FIFO order.
        free: Free processors ``m`` now.
        freeze_capacity: ``frec`` — processors that will remain free at
            ``fret`` after honouring the reservation.
        freeze_time: ``fret`` — the reservation (shadow) instant.
        now: Current time ``t``.
        granularity: Allocation unit.
        lookahead: Max queue prefix examined.

    Returns:
        The selected set ``S_f`` in queue order.
    """
    if free <= 0:
        return []
    candidates = _eligible(jobs, free, lookahead)
    if not candidates:
        return []
    freeze_capacity = max(0, int(freeze_capacity))

    cap_now = free // granularity
    cap_freeze = freeze_capacity // granularity
    entries = []
    for job in candidates:
        # Algorithm 1 line 16 (strict <): jobs ending before the freeze
        # end time do not occupy freeze capacity.
        frenum = 0 if now + job.estimate < freeze_time else job.num
        if frenum // granularity > cap_freeze:
            continue  # can never be selected: would overrun the reservation
        entries.append((job, job.num // granularity, frenum // granularity, job.num))
    if not entries:
        return []

    dp = np.zeros((cap_now + 1, cap_freeze + 1), dtype=np.int64)
    shifted = np.empty_like(dp)
    # Sparse per-candidate deltas for the incremental backtrack (see
    # module docstring) — no full 2-D table copies on the hot path.
    undo: List[Tuple[Tuple[np.ndarray, np.ndarray], np.ndarray]] = []
    cells_touched = 0
    for _, size, fsize, value in entries:
        shifted.fill(-1)
        np.add(
            dp[: cap_now + 1 - size, : cap_freeze + 1 - fsize],
            value,
            out=shifted[size:, fsize:],
        )
        improved = np.nonzero(shifted > dp)
        cells_touched += improved[0].size
        undo.append((improved, dp[improved]))
        dp[improved] = shifted[improved]
    bump("dp_cells", int(cells_touched))
    bump("dp_invocations")

    selected: List[Job] = []
    c1, c2 = cap_now, cap_freeze
    v = int(dp[c1, c2])
    for index in range(len(entries) - 1, -1, -1):
        cells, previous = undo[index]
        dp[cells] = previous  # dp is now the table *before* this candidate
        if int(dp[c1, c2]) == v:
            continue
        job, size, fsize, value = entries[index]
        selected.append(job)
        c1 -= size
        c2 -= fsize
        v -= value
        assert c1 >= 0 and c2 >= 0 and int(dp[c1, c2]) == v, (
            "DP backtrack corrupted"
        )
    selected.reverse()
    return selected


__all__ = ["DEFAULT_LOOKAHEAD", "basic_dp", "reservation_dp"]
