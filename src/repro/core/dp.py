"""``Basic_DP`` and ``Reservation_DP`` — the LOS dynamic programs [7].

Both solve exact 0/1 knapsacks that pick a set of waiting jobs
maximizing *instantaneous utilization* (the sum of selected job sizes):

``basic_dp``
    one capacity dimension — the free processors ``m`` right now.

``reservation_dp``
    two capacity dimensions — free processors now, and the "freeze end
    capacity" ``frec`` available at the freeze end time ``fret``
    (the *shadow time/capacity* of [7]).  A selected job consumes
    freeze capacity only if it would still be running at ``fret``:
    ``frenum = 0 if t + dur < fret else num`` (Algorithm 1 line 16).

Exactness is affordable because capacities shrink by the allocation
granularity (10 units on the 320-processor BlueGene/P with 32-processor
psets) and the lookahead is bounded (50 jobs in [7]).  The 2-D table is
vectorized with NumPy — the per-job update touches only the reachable
sub-rectangle ``dp[size:, fsize:]`` (the shifted cells a candidate can
improve), never the full table — and the selected set is reconstructed
by an *incremental backtrack*: each candidate records only the cells it
improved (and their previous values), and the backtrack undoes those
deltas one candidate at a time to recover the before-table it needs.
This is exactly equivalent to the snapshot-per-candidate formulation
but stores sparse deltas instead of full table copies, which matters
because the DP runs once per scheduling cycle on the hot path.

On top of the solver sits the memoization layer of
:mod:`repro.core.memo`: each call canonicalizes its instance —
``(capacity, ((size, value), ...))`` for ``basic_dp``, ``(cap_now,
cap_freeze, ((size, fsize, value), ...))`` for ``reservation_dp`` —
and consults an LRU cache of previously solved instances.  The cached
value is the tuple of selected candidate *indices*, mapped back onto
the live :class:`Job` candidates of the calling cycle, so hits are
correct by construction (the DP is a pure function of the key).
``dp_invocations``/``dp_cells`` count actual solves only; hits and
misses surface as ``dp_cache_hits``/``dp_cache_misses``.  Disable with
``REPRO_NO_MEMO=1``.

Tie-breaking: when several sets achieve maximal utilization, the
reconstruction prefers jobs *closer to the head of the queue* (a later
job is skipped whenever the same value is achievable without it),
which keeps the policies as FCFS-faithful as packing allows.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.core.memo import (
    BASIC_CACHE,
    RESERVATION_CACHE,
    lookup,
    memo_enabled,
)
from repro.obs.spans import begin as _span_begin, end as _span_end
from repro.obs.telemetry import bump
from repro.workload.job import Job

#: Lookahead bound of [7]: the DP examines at most this many waiting
#: jobs per cycle, which the authors showed loses almost no packing
#: efficiency while bounding runtime.
DEFAULT_LOOKAHEAD = 50


class DPSelection(NamedTuple):
    """A DP decision plus head metadata the policies need.

    Attributes:
        jobs: The selected set in queue order (empty when nothing fits).
        head_selected: Whether the queue's head job is in the set.
            Computed here (the head, when eligible, is candidate 0) so
            policies don't re-scan the set for head membership on every
            pass.
    """

    jobs: List[Job]
    head_selected: bool


_EMPTY = DPSelection([], False)


def _eligible(jobs: Iterable[Job], free: int, lookahead: Optional[int]) -> List[Job]:
    """Candidate set: the first ``lookahead`` queued jobs that fit ``m``.

    Single pass over the (bounded) window — no intermediate copies of
    the full queue; this runs every scheduling cycle.
    """
    window = jobs if lookahead is None else islice(jobs, lookahead)
    return [job for job in window if job.num <= free]


# ----------------------------------------------------------------------
# Solvers (pure functions of the canonical instance)
# ----------------------------------------------------------------------
def _proportional_ratio(sizes: List[int], values: List[int]) -> Optional[int]:
    """The common ``value / size`` ratio, or ``None`` when there is none.

    Machine-validated workloads always have one (``num`` is a positive
    multiple of the granularity, so ``value == size * granularity``),
    which turns the value-maximizing knapsack into a subset-sum over
    sizes — solvable on integer bitsets instead of a value table.
    """
    if not sizes or sizes[0] <= 0 or values[0] % sizes[0]:
        return None
    ratio = values[0] // sizes[0]
    for size, value in zip(sizes, values):
        if size <= 0 or value != size * ratio:
            return None
    return ratio


def _solve_basic(capacity: int, entries: Tuple[Tuple[int, int], ...]) -> Tuple[int, ...]:
    """Solve one ``basic_dp`` instance; returns selected indices.

    ``entries`` is the canonical ``((size, value), ...)`` tuple (sizes
    and ``capacity`` in granularity units) — exactly the memo key's
    payload, so cached and fresh results are interchangeable.
    Dispatches to the bitset subset-sum solver when values are
    proportional to sizes (always true under the machine's granularity
    invariant); the value-table solver is the general fallback and the
    reference the property tests compare against.
    """
    token = _span_begin("dp_solve")
    try:
        if _proportional_ratio([s for s, _ in entries], [v for _, v in entries]) is not None:
            return _solve_basic_bitset(capacity, entries)
        return _solve_basic_table(capacity, entries)
    finally:
        _span_end(token)


def _solve_basic_bitset(
    capacity: int, entries: Tuple[Tuple[int, int], ...]
) -> Tuple[int, ...]:
    """Subset-sum formulation on one Python integer per prefix.

    Bit ``s`` of the running integer means "some subset of the
    candidates seen so far occupies exactly ``s`` units".  With values
    proportional to sizes, the utilization-maximal set is the highest
    reachable bit, and the FCFS tie-break of the table solver ("skip a
    later job whenever the same value is achievable without it") maps
    to a prefix-reachability test per candidate.  ``dp_cells`` counts
    newly-reachable sums here (the bitset analogue of improved cells).
    """
    full = (1 << (capacity + 1)) - 1
    bits = 1
    prefixes: List[int] = []
    cells_touched = 0
    for size, _ in entries:
        prefixes.append(bits)
        grown = (bits | (bits << size)) & full
        cells_touched += (grown ^ bits).bit_count()
        bits = grown
    bump("dp_cells", cells_touched)
    bump("dp_invocations")

    selected: List[int] = []
    remaining = bits.bit_length() - 1  # the best achievable total size
    for index in range(len(entries) - 1, -1, -1):
        if (prefixes[index] >> remaining) & 1:
            continue  # same total achievable without this (later) job
        selected.append(index)
        remaining -= entries[index][0]
    assert remaining == 0, "bitset backtrack corrupted"
    selected.reverse()
    return tuple(selected)


def _solve_basic_table(capacity: int, entries: Tuple[Tuple[int, int], ...]) -> Tuple[int, ...]:
    """General value-table solver (arbitrary size/value combinations)."""
    dp = np.zeros(capacity + 1, dtype=np.int64)
    # Per candidate: the cells it improved and their previous values,
    # so the backtrack can undo updates instead of copying the table.
    undo: List[Tuple[np.ndarray, np.ndarray]] = []
    cells_touched = 0
    _no_cells = np.empty(0, dtype=np.intp)
    for size, value in entries:
        if size > capacity:
            # Unselectable candidate (callers filter these; kept for
            # robustness on raw solver input).
            undo.append((_no_cells, _no_cells))
            continue
        # Only cells >= size are reachable; comparing the shifted
        # prefix against the tail touches exactly those, instead of
        # sentinel-filling the whole table per candidate.
        shifted = dp[: capacity + 1 - size] + value
        better = np.nonzero(shifted > dp[size:])[0]
        cells_touched += better.size
        new_values = shifted[better]
        improved = better + size
        undo.append((improved, dp[improved]))
        dp[improved] = new_values
    bump("dp_cells", int(cells_touched))
    bump("dp_invocations")

    selected: List[int] = []
    c = capacity
    v = int(dp[c])
    for index in range(len(entries) - 1, -1, -1):
        cells, previous = undo[index]
        dp[cells] = previous  # dp is now the table *before* this candidate
        if int(dp[c]) == v:
            continue  # same value achievable without this (later) job
        selected.append(index)
        c -= entries[index][0]
        v -= entries[index][1]
        assert c >= 0 and int(dp[c]) == v, "DP backtrack corrupted"
    selected.reverse()
    return tuple(selected)


def _solve_reservation(
    cap_now: int, cap_freeze: int, entries: Tuple[Tuple[int, int, int], ...]
) -> Tuple[int, ...]:
    """Solve one ``reservation_dp`` instance; returns selected indices.

    Same dispatch as :func:`_solve_basic`: bitset subset-sum over the
    two capacity dimensions when values are proportional to sizes,
    value-table fallback otherwise.
    """
    token = _span_begin("dp_solve")
    try:
        if (
            _proportional_ratio([s for s, _, _ in entries], [v for _, _, v in entries])
            is not None
        ):
            return _solve_reservation_bitset(cap_now, cap_freeze, entries)
        return _solve_reservation_table(cap_now, cap_freeze, entries)
    finally:
        _span_end(token)


def _solve_reservation_bitset(
    cap_now: int, cap_freeze: int, entries: Tuple[Tuple[int, int, int], ...]
) -> Tuple[int, ...]:
    """2-D subset-sum on one wide integer per prefix.

    State ``(now-units r, freeze-units c)`` lives at bit ``r*W + c``;
    the row width ``W`` is padded past ``cap_freeze`` by the largest
    freeze size so a candidate's shift ``size*W + fsize`` can never
    carry a column into the next row before the validity mask prunes
    it.  The best set maximizes the row index; the backtrack skips a
    later candidate whenever its row total is prefix-reachable within
    the remaining freeze budget (the exact tie-break of the table
    solver, restated on reachability).
    """
    width = cap_freeze + 1 + max((fsize for _, fsize, _ in entries), default=0)
    column_mask = (1 << (cap_freeze + 1)) - 1
    valid = 0
    for row in range(cap_now + 1):
        valid |= column_mask << (row * width)
    bits = 1
    prefixes: List[int] = []
    cells_touched = 0
    for size, fsize, _ in entries:
        prefixes.append(bits)
        grown = (bits | (bits << (size * width + fsize))) & valid
        cells_touched += (grown ^ bits).bit_count()
        bits = grown
    bump("dp_cells", cells_touched)
    bump("dp_invocations")

    selected: List[int] = []
    remaining = (bits.bit_length() - 1) // width  # best total now-units
    freeze_budget = cap_freeze
    for index in range(len(entries) - 1, -1, -1):
        row = (prefixes[index] >> (remaining * width)) & (
            (1 << (freeze_budget + 1)) - 1
        )
        if row:
            continue  # same total achievable without this (later) job
        size, fsize, _ = entries[index]
        selected.append(index)
        remaining -= size
        freeze_budget -= fsize
    assert remaining == 0 and freeze_budget >= 0, "bitset backtrack corrupted"
    selected.reverse()
    return tuple(selected)


def _solve_reservation_table(
    cap_now: int, cap_freeze: int, entries: Tuple[Tuple[int, int, int], ...]
) -> Tuple[int, ...]:
    """General value-table solver (arbitrary size/value combinations)."""
    dp = np.zeros((cap_now + 1, cap_freeze + 1), dtype=np.int64)
    # Sparse per-candidate deltas for the incremental backtrack (see
    # module docstring) — no full 2-D table copies on the hot path.
    undo: List[Tuple[Tuple[np.ndarray, np.ndarray], np.ndarray]] = []
    cells_touched = 0
    _no_cells = np.empty(0, dtype=np.intp)
    for size, fsize, value in entries:
        if size > cap_now or fsize > cap_freeze:
            # Unselectable candidate (callers filter these; kept for
            # robustness on raw solver input).
            undo.append(((_no_cells, _no_cells), _no_cells))
            continue
        # The reachable region is the sub-rectangle dp[size:, fsize:];
        # everything outside it kept the old value by definition, so
        # the L-shaped remainder never needs a sentinel.
        shifted = dp[: cap_now + 1 - size, : cap_freeze + 1 - fsize] + value
        rows, cols = np.nonzero(shifted > dp[size:, fsize:])
        cells_touched += rows.size
        new_values = shifted[rows, cols]
        improved = (rows + size, cols + fsize)
        undo.append((improved, dp[improved]))
        dp[improved] = new_values
    bump("dp_cells", int(cells_touched))
    bump("dp_invocations")

    selected: List[int] = []
    c1, c2 = cap_now, cap_freeze
    v = int(dp[c1, c2])
    for index in range(len(entries) - 1, -1, -1):
        cells, previous = undo[index]
        dp[cells] = previous  # dp is now the table *before* this candidate
        if int(dp[c1, c2]) == v:
            continue
        size, fsize, value = entries[index]
        selected.append(index)
        c1 -= size
        c2 -= fsize
        v -= value
        assert c1 >= 0 and c2 >= 0 and int(dp[c1, c2]) == v, (
            "DP backtrack corrupted"
        )
    selected.reverse()
    return tuple(selected)


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def basic_dp_select(
    jobs: Iterable[Job],
    free: int,
    granularity: int = 1,
    lookahead: Optional[int] = DEFAULT_LOOKAHEAD,
    memo: Optional[bool] = None,
) -> DPSelection:
    """Memoized ``Basic_DP`` with head metadata (see :func:`basic_dp`).

    ``memo`` short-circuits the per-call environment read: policies
    pass the runner's per-run snapshot (``ctx.memo``); ``None`` falls
    back to consulting :func:`repro.core.memo.memo_enabled` directly.
    """
    if free <= 0:
        return _EMPTY
    # One fused pass over the lookahead window builds the candidate
    # list, the canonical memo entries, and notes the queue head —
    # this runs every scheduling cycle, so the separate _eligible /
    # entry-comprehension / next(iter(...)) passes it replaces were
    # measurable overhead.
    head_id: Optional[int] = None
    candidates: List[Job] = []
    append_candidate = candidates.append
    entry_list: List[Tuple[int, int]] = []
    append_entry = entry_list.append
    total = 0
    window = jobs if lookahead is None else islice(jobs, lookahead)
    for job in window:
        if head_id is None:
            head_id = job.job_id
        num = job.num
        if num <= free:
            append_candidate(job)
            append_entry((num // granularity, num))
            total += num
    if not candidates:
        return _EMPTY
    if total <= free:
        # Every candidate fits at once: taking all of them is the
        # unique DP optimum (values are positive), so the memo probe
        # and the solve are skipped entirely.
        return DPSelection(candidates, candidates[0].job_id == head_id)
    capacity = free // granularity
    entries = tuple(entry_list)

    indices: Optional[Tuple[int, ...]] = None
    key = None
    if memo_enabled() if memo is None else memo:
        key = (capacity, entries)
        indices = lookup(BASIC_CACHE, key)
    if indices is None:
        indices = _solve_basic(capacity, entries)
        if key is not None:
            BASIC_CACHE.put(key, indices)

    selected = [candidates[i] for i in indices]
    head_selected = bool(selected) and selected[0].job_id == head_id
    return DPSelection(selected, head_selected)


def basic_dp(
    jobs: Iterable[Job],
    free: int,
    granularity: int = 1,
    lookahead: Optional[int] = DEFAULT_LOOKAHEAD,
) -> List[Job]:
    """Select waiting jobs maximizing utilization within ``free``.

    Args:
        jobs: Waiting queue in FIFO order (``W^b``).
        free: Free processors ``m``.
        granularity: Allocation unit; all sizes and ``free`` are
            multiples of it by machine invariant.
        lookahead: Max queue prefix examined (None = unbounded).

    Returns:
        The selected set ``S`` in queue order.  Empty when nothing fits.

    >>> from repro.workload.job import Job
    >>> queue = [Job(job_id=i, submit=0.0, num=n, estimate=60.0)
    ...          for i, n in [(1, 7), (2, 4), (3, 6)]]
    >>> [job.num for job in basic_dp(queue, free=10)]   # Figure 2: {4, 6}
    [4, 6]
    """
    return basic_dp_select(jobs, free, granularity, lookahead).jobs


def reservation_dp_select(
    jobs: Iterable[Job],
    free: int,
    freeze_capacity: int,
    freeze_time: float,
    now: float,
    granularity: int = 1,
    lookahead: Optional[int] = DEFAULT_LOOKAHEAD,
    memo: Optional[bool] = None,
) -> DPSelection:
    """Memoized ``Reservation_DP`` with head metadata
    (see :func:`reservation_dp`).

    ``memo`` short-circuits the per-call environment read: policies
    pass the runner's per-run snapshot (``ctx.memo``); ``None`` falls
    back to consulting :func:`repro.core.memo.memo_enabled` directly.
    """
    if free <= 0:
        return _EMPTY
    freeze_capacity = max(0, int(freeze_capacity))
    cap_now = free // granularity
    cap_freeze = freeze_capacity // granularity

    # Fused eligibility + canonicalization pass (see basic_dp_select):
    # one walk over the lookahead window computes fit, frenum folding
    # and the memo entries together.
    head_id: Optional[int] = None
    entry_jobs: List[Job] = []
    append_job = entry_jobs.append
    entry_list: List[Tuple[int, int, int]] = []
    append_entry = entry_list.append
    tot_size = 0
    tot_fsize = 0
    window = jobs if lookahead is None else islice(jobs, lookahead)
    for job in window:
        if head_id is None:
            head_id = job.job_id
        num = job.num
        if num > free:
            continue
        # Algorithm 1 line 16 (strict <): jobs ending before the freeze
        # end time do not occupy freeze capacity.
        fsize = 0 if now + job.estimate < freeze_time else num // granularity
        if fsize > cap_freeze:
            continue  # can never be selected: would overrun the reservation
        size = num // granularity
        append_job(job)
        append_entry((size, fsize, num))
        tot_size += size
        tot_fsize += fsize
    if not entry_list:
        return _EMPTY
    if tot_size <= cap_now and tot_fsize <= cap_freeze:
        # Every candidate fits inside both budgets at once: taking all
        # of them is the unique DP optimum (values are positive), so
        # the memo probe and the solve are skipped entirely.
        return DPSelection(entry_jobs, entry_jobs[0].job_id == head_id)
    instance = tuple(entry_list)

    indices: Optional[Tuple[int, ...]] = None
    key = None
    if memo_enabled() if memo is None else memo:
        key = (cap_now, cap_freeze, instance)
        indices = lookup(RESERVATION_CACHE, key)
    if indices is None:
        indices = _solve_reservation(cap_now, cap_freeze, instance)
        if key is not None:
            RESERVATION_CACHE.put(key, indices)

    selected = [entry_jobs[i] for i in indices]
    head_selected = bool(selected) and selected[0].job_id == head_id
    return DPSelection(selected, head_selected)


def reservation_dp(
    jobs: Iterable[Job],
    free: int,
    freeze_capacity: int,
    freeze_time: float,
    now: float,
    granularity: int = 1,
    lookahead: Optional[int] = DEFAULT_LOOKAHEAD,
) -> List[Job]:
    """Select jobs maximizing utilization around a freeze reservation.

    Implements ``Reservation_DP(frec)``: maximize ``Σ num`` subject to

    - ``Σ num <= free`` (processors available now), and
    - ``Σ frenum <= freeze_capacity`` where ``frenum`` is ``num`` for
      jobs whose estimated end ``now + dur`` reaches the freeze end
      time ``freeze_time``, else 0.

    Args:
        jobs: Waiting queue in FIFO order.
        free: Free processors ``m`` now.
        freeze_capacity: ``frec`` — processors that will remain free at
            ``fret`` after honouring the reservation.
        freeze_time: ``fret`` — the reservation (shadow) instant.
        now: Current time ``t``.
        granularity: Allocation unit.
        lookahead: Max queue prefix examined.

    Returns:
        The selected set ``S_f`` in queue order.
    """
    return reservation_dp_select(
        jobs, free, freeze_capacity, freeze_time, now, granularity, lookahead
    ).jobs


__all__ = [
    "DEFAULT_LOOKAHEAD",
    "DPSelection",
    "basic_dp",
    "basic_dp_select",
    "reservation_dp",
    "reservation_dp_select",
]
