"""Algorithm registry — Table III of the paper.

Maps the twelve evaluated algorithm names (plus extra baselines) to
constructors, so experiments and benchmarks can be specified by name::

    make_scheduler("Delayed-LOS", max_skip_count=7)
    make_scheduler("EASY-DE")

Naming convention, as in the paper: ``-D`` handles the heterogeneous
(dedicated + batch) workload, ``-E`` appends the ECC processor, and
``-DE`` does both.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.base import Scheduler
from repro.core.conservative import ConservativeBackfill
from repro.core.dedicated import EasyBackfillDedicated, LOSDedicated
from repro.core.delayed_los import DelayedLOS
from repro.core.dp import DEFAULT_LOOKAHEAD
from repro.core.easy import EasyBackfill
from repro.core.fcfs import FCFS
from repro.core.hybrid_los import HybridLOS
from repro.core.los import LOS
from repro.core.malleable import (
    MalleableAgreement,
    MalleableBackfill,
    MalleableFCFS,
)
from repro.core.selector import AdaptiveSelector
from repro.core.sizeorder import LargestJobFirst, ShortestJobFirst, SmallestJobFirst

_Factory = Callable[[int, Optional[int], bool], Scheduler]


def _easy(cs: int, lookahead: Optional[int], elastic: bool) -> Scheduler:
    return EasyBackfill(elastic=elastic)


def _easy_d(cs: int, lookahead: Optional[int], elastic: bool) -> Scheduler:
    return EasyBackfillDedicated(elastic=elastic)


def _los(cs: int, lookahead: Optional[int], elastic: bool) -> Scheduler:
    return LOS(lookahead=lookahead, elastic=elastic)


def _los_d(cs: int, lookahead: Optional[int], elastic: bool) -> Scheduler:
    return LOSDedicated(lookahead=lookahead, elastic=elastic)


def _delayed(cs: int, lookahead: Optional[int], elastic: bool) -> Scheduler:
    return DelayedLOS(max_skip_count=cs, lookahead=lookahead, elastic=elastic)


def _hybrid(cs: int, lookahead: Optional[int], elastic: bool) -> Scheduler:
    return HybridLOS(max_skip_count=cs, lookahead=lookahead, elastic=elastic)


def _fcfs(cs: int, lookahead: Optional[int], elastic: bool) -> Scheduler:
    return FCFS(elastic=elastic)


def _conservative(cs: int, lookahead: Optional[int], elastic: bool) -> Scheduler:
    return ConservativeBackfill(elastic=elastic)


def _adaptive(cs: int, lookahead: Optional[int], elastic: bool) -> Scheduler:
    return AdaptiveSelector(max_skip_count=cs, lookahead=lookahead, elastic=elastic)


def _malleable_fcfs(cs: int, lookahead: Optional[int], elastic: bool) -> Scheduler:
    return MalleableFCFS(elastic=elastic)


def _malleable_backfill(cs: int, lookahead: Optional[int], elastic: bool) -> Scheduler:
    return MalleableBackfill(elastic=elastic)


def _malleable_agreement(cs: int, lookahead: Optional[int], elastic: bool) -> Scheduler:
    return MalleableAgreement(elastic=elastic)


def _sjf(cs: int, lookahead: Optional[int], elastic: bool) -> Scheduler:
    return ShortestJobFirst(elastic=elastic)


def _smallest(cs: int, lookahead: Optional[int], elastic: bool) -> Scheduler:
    return SmallestJobFirst(elastic=elastic)


def _ljf(cs: int, lookahead: Optional[int], elastic: bool) -> Scheduler:
    return LargestJobFirst(elastic=elastic)


#: name -> (factory, elastic flag).  Table III rows plus two related-
#: work baselines used by ablations.
ALGORITHMS: Dict[str, tuple[_Factory, bool]] = {
    "EASY": (_easy, False),
    "EASY-D": (_easy_d, False),
    "EASY-E": (_easy, True),
    "EASY-DE": (_easy_d, True),
    "LOS": (_los, False),
    "LOS-D": (_los_d, False),
    "LOS-E": (_los, True),
    "LOS-DE": (_los_d, True),
    "Delayed-LOS": (_delayed, False),
    "Hybrid-LOS": (_hybrid, False),
    "Delayed-LOS-E": (_delayed, True),
    "Hybrid-LOS-E": (_hybrid, True),
    "FCFS": (_fcfs, False),
    "CONSERVATIVE": (_conservative, False),
    # The paper's §V-A "dynamic, algorithm selection policy" suggestion.
    "ADAPTIVE": (_adaptive, False),
    "ADAPTIVE-E": (_adaptive, True),
    # §II-B related-work baselines (queue-reordering, pre-backfilling).
    "SJF": (_sjf, False),
    "SMALLEST": (_smallest, False),
    "LJF": (_ljf, False),
    # Scheduler-initiated malleability extensions (docs/malleability.md).
    # Elastic by construction: their resize commands ride the ECC path.
    "Malleable-FCFS": (_malleable_fcfs, True),
    "Malleable-Backfill": (_malleable_backfill, True),
    "Malleable-Agreement": (_malleable_agreement, True),
}


def make_scheduler(
    name: str,
    max_skip_count: int = 7,
    lookahead: Optional[int] = DEFAULT_LOOKAHEAD,
) -> Scheduler:
    """Instantiate an algorithm by its Table III name.

    Args:
        name: Registry key (case-sensitive, paper spelling).
        max_skip_count: ``C_s`` for Delayed-LOS / Hybrid-LOS (ignored
            by the baselines, whose behaviour pins it).
        lookahead: DP window for the LOS family.

    Raises:
        KeyError: with the known names listed, on a bad name.
    """
    try:
        factory, elastic = ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise KeyError(f"unknown algorithm {name!r}; known: {known}") from None
    scheduler = factory(max_skip_count, lookahead, elastic)
    scheduler.name = name  # canonical registry spelling
    return scheduler


__all__ = ["ALGORITHMS", "make_scheduler"]
