"""Scheduler interface shared by every policy.

Policies are *pure deciders*: the simulation runner owns the machine,
the queues and the clock, builds a :class:`SchedulerContext` snapshot
at every scheduling event, and applies the returned
:class:`CycleDecision`.  The only job field a policy mutates is
``scount`` — exactly the state the paper's Notations box attaches to
queued jobs.

The runner re-invokes ``cycle`` until a pass makes no decision (a
fix-point): the Cs-exceeded branch of Algorithm 1 activates *only the
head job*, and remaining capacity must then be offered to the next
head / the DP again within the same event.  ``allow_scount_increment``
is true only on the first pass of an event so a skip counts once per
scheduling cycle, matching "scount ... is incremented by one at every
scheduling cycle".
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.cluster.machine import Machine
from repro.queues.active_list import ActiveList
from repro.queues.batch_queue import BatchQueue
from repro.queues.dedicated_queue import DedicatedQueue
from repro.workload.ecc import ECC
from repro.workload.job import Job

# ----------------------------------------------------------------------
# Decision-provenance reason codes
# ----------------------------------------------------------------------
# Why a queued job was passed over this cycle.  Policies report these
# through ``SchedulerContext.explain`` (set by the runner only when
# decision recording is on, so the default path costs one ``None``
# check); the runner dedups and emits them as ``decision`` records in
# the ``repro.trace/1`` stream, rendered by ``repro explain --job N``.
# The full catalog lives in docs/observability.md.

#: The job (or backfill candidate) needs more processors than are free.
REASON_INSUFFICIENT = "insufficient-free-procs"
#: A backfill candidate fits now but would delay the head's reservation.
REASON_RESERVATION = "reservation-block"
#: The DP selection maximizing utilization left the job out this cycle.
REASON_DP_EXCLUDED = "dp-excluded"
#: Starting the job would collide with a dedicated-job freeze window.
REASON_FREEZE_WINDOW = "freeze-window"
#: A Malleable-* policy could not free enough capacity by shrinking.
REASON_SHRINK_INFEASIBLE = "malleable-shrink-infeasible"
#: The job crashed and is waiting out its retry backoff.
REASON_FAULT_BACKOFF = "fault-backoff"

#: Every reason code a policy or the runner may report (docs catalog +
#: ``tools/check_counter_catalog.py`` cross-check this tuple).
DECISION_REASONS = (
    REASON_INSUFFICIENT,
    REASON_RESERVATION,
    REASON_DP_EXCLUDED,
    REASON_FREEZE_WINDOW,
    REASON_SHRINK_INFEASIBLE,
    REASON_FAULT_BACKOFF,
)


@dataclass(slots=True)
class SchedulerContext:
    """Scheduler-visible snapshot at one scheduling instant.

    Attributes:
        now: Current simulation time ``t``.
        machine: The machine (for ``M`` and free capacity ``m``).
        batch_queue: ``W^b`` in FIFO order.
        dedicated_queue: ``W^d`` sorted by requested start.
        active: ``A`` sorted by increasing residual.
        allow_scount_increment: True on the first ``cycle`` pass of an
            event; policies must not bump ``scount`` on later passes.
    """

    now: float
    machine: Machine
    batch_queue: BatchQueue
    dedicated_queue: DedicatedQueue
    active: ActiveList
    allow_scount_increment: bool = True
    #: Snapshot of :func:`repro.core.memo.memo_enabled` for this run;
    #: set by the runner so hot paths (``dedicated_freeze``) never
    #: re-read the environment mid-run.
    memo: bool = field(default=True, repr=False, compare=False)
    #: Memoized ``free``; policies read it several times per pass and
    #: the runner reuses one context across passes, resetting this
    #: after applying a decision (see :meth:`invalidate_free`).
    _free: Optional[int] = field(default=None, repr=False, compare=False)
    #: Decision-provenance sink, ``callable(job, reason)`` with
    #: ``reason`` one of :data:`DECISION_REASONS`.  ``None`` (the
    #: default) unless the runner is recording decision records, so
    #: policies guard with ``if ctx.explain is not None`` and the
    #: common path stays observation-free.
    explain: Optional[Callable[[Job, str], None]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def free(self) -> int:
        """The paper's ``m`` — free processors at ``t``.

        Computed as ``M - offline - Σ a_i.num`` (Algorithm 1 line 1,
        with ``M`` shrunk by psets currently failed under fault
        injection — zero on the fault-free path); the machine's own
        bookkeeping agrees by the allocation invariants
        (``Machine.check_invariants``).  Cached: capacity cannot
        change while a pass is deciding, and the runner invalidates
        between passes.
        """
        m = self._free
        if m is None:
            machine = self.machine
            m = machine.total - machine._offline_procs - self.active.total_used
            self._free = m
        return m

    def invalidate_free(self) -> None:
        """Drop the cached ``free`` after capacity changed (runner use)."""
        self._free = None


@dataclass(slots=True)
class CycleDecision:
    """What one scheduler pass wants done.

    Attributes:
        starts: Batch-queue jobs to activate *now*, in activation
            order.  The runner allocates processors, stamps
            ``start_time`` and moves them to the active list.
        promotions: Dedicated-queue jobs to move to the head of the
            batch queue with ``scount = C_s`` (Algorithm 3).  Applied
            before ``starts``.
        commands: Synthetic Elastic Control Commands a *malleable*
            policy wants applied to running jobs (shrink/expand; see
            :mod:`repro.core.malleable`, docs/malleability.md).
            Applied first — before promotions and starts — through the
            run's :class:`~repro.core.elastic.ECCProcessor`, so a
            shrink's freed capacity is visible to the same decision's
            starts.  Non-malleable policies never populate this.
    """

    starts: List[Job] = field(default_factory=list)
    promotions: List[Job] = field(default_factory=list)
    commands: List["ECC"] = field(default_factory=list)

    def is_empty(self) -> bool:
        """Whether the pass reached a fix-point."""
        return not self.starts and not self.promotions and not self.commands

    @staticmethod
    def nothing() -> "CycleDecision":
        """The empty decision (terminates the runner's cycle loop).

        Returns a shared instance — callers must treat it (and its
        lists) as read-only.  Policies reach a fix-point on every
        scheduling event, so this is the single most-constructed
        decision.
        """
        return _NOTHING


_NOTHING = CycleDecision()


class Scheduler(abc.ABC):
    """Base class of all scheduling policies.

    Attributes:
        name: Registry/display name (Table III spelling).
        handles_dedicated: Whether the policy manages ``W^d``; the
            runner refuses heterogeneous workloads otherwise.
        elastic: Whether the runner should apply Elastic Control
            Commands (the "-E" variants append the ECC processor; the
            scheduling logic itself is unchanged, §V).
        malleable: Whether the policy emits scheduler-initiated
            shrink/expand commands (``CycleDecision.commands``); the
            runner enables the ECC processor's running-resize path
            only for such policies, so every other policy keeps the
            paper's rigid-allocation semantics bit-for-bit.
    """

    name: str = "scheduler"
    handles_dedicated: bool = False
    malleable: bool = False

    def __init__(self, elastic: bool = False) -> None:
        self.elastic = bool(elastic)
        if self.elastic:
            self.name = f"{self.name}-E"

    @abc.abstractmethod
    def cycle(self, ctx: SchedulerContext) -> CycleDecision:
        """Run one scheduling pass over the snapshot.

        Must be side-effect free except for ``scount`` bookkeeping on
        queued jobs (guarded by ``ctx.allow_scount_increment``).
        """

    def memo_token(self) -> object:
        """Hashable digest of policy-internal mutable state.

        The runner folds this into its cycle-elision fingerprint
        (docs/performance.md): two cycles may only be treated as
        equivalent when the policy would decide from the same internal
        state.  Policies are stateless by design, so the default is a
        constant; stateful subclasses (:class:`~repro.core.selector.
        AdaptiveSelector`'s hysteresis) must override.
        """
        return None

    def on_job_failure(self, job: Job, now: float, permanent: bool) -> None:
        """Notification hook: ``job`` failed or was evicted at ``now``.

        Called by the runner after its own recovery bookkeeping
        (requeue or permanent failure, per ``permanent``).  Policies
        are stateless by design, so the default is a no-op; stateful
        subclasses (e.g. a reservation-holding CONSERVATIVE extension)
        can override to invalidate cached plans.
        """

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def due_dedicated_promotion(ctx: SchedulerContext) -> Optional[CycleDecision]:
        """Algorithm 2 lines 6–7 / 39–42: promote a due dedicated head.

        Returns a promotion decision when ``w_1^d.start <= t``, else
        ``None``.  Shared by Hybrid-LOS and the -D baselines.
        """
        head = ctx.dedicated_queue.head
        if head is not None and head.requested_start is not None and head.requested_start <= ctx.now:
            return CycleDecision(promotions=[head])
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


__all__ = [
    "CycleDecision",
    "DECISION_REASONS",
    "REASON_DP_EXCLUDED",
    "REASON_FAULT_BACKOFF",
    "REASON_FREEZE_WINDOW",
    "REASON_INSUFFICIENT",
    "REASON_RESERVATION",
    "REASON_SHRINK_INFEASIBLE",
    "Scheduler",
    "SchedulerContext",
]
