"""Conservative backfill.

The cautious sibling of EASY discussed in the related work (§II-B):
*every* queued job gets a reservation, and a job may move ahead only
if it delays none of them.  Implemented by planning the whole queue
against a :class:`~repro.core.profile.CapacityProfile` each cycle and
starting exactly the jobs whose planned start is *now*.

Replanning every cycle is the standard simulator formulation: earlier-
than-estimated terminations compact the plan automatically (estimates
only ever over-state occupancy, so replanning never pushes a job past
a previously promised start).
"""

from __future__ import annotations

from repro.core.base import CycleDecision, Scheduler, SchedulerContext
from repro.core.profile import CapacityProfile


class ConservativeBackfill(Scheduler):
    """Backfill that never delays any queued job's planned start."""

    name = "CONSERVATIVE"

    def cycle(self, ctx: SchedulerContext) -> CycleDecision:
        queue = ctx.batch_queue.jobs()
        if not queue:
            return CycleDecision.nothing()
        # Plan against the *available* capacity: offline psets (fault
        # injection) must not be promised to future reservations.
        profile = CapacityProfile.from_active(
            ctx.machine.available, ctx.now, ctx.active, memo=ctx.memo
        )
        starts = []
        for job in queue:
            start = profile.earliest_start(job.num, job.estimate)
            profile.reserve(start, job.num, job.estimate)
            if start <= ctx.now:
                starts.append(job)
        return CycleDecision(starts=starts)


__all__ = ["ConservativeBackfill"]
