"""The ECC processor — runtime elasticity (§III-C, Figure 3).

Elastic Control Commands arrive on their own FCFS *elastic control
queue* and are applied by the ECC processor to previously submitted
jobs, whether still queued or already running:

- **ET** extends the execution-time requirement: the kill-by time of a
  running job moves later; a queued job's estimate grows.
- **RT** reduces it: a running job's kill-by moves earlier, clamped at
  *now* (a reduction below the already-elapsed time terminates the job
  immediately); a queued job's estimate shrinks, clamped at a minimal
  runtime.
- **EP/RP** (resource dimension) are the paper's future work; a
  prototype is provided behind ``allow_resource_eccs`` for queued
  jobs (the ECC-intensity ablation), and behind
  ``allow_running_resize`` for *running* jobs — the primitive the
  scheduler-initiated malleability layer (:mod:`repro.core.malleable`,
  docs/malleability.md) is built on.  A running resize is
  work-conserving: the job's remaining processor-seconds are
  preserved, so shrinking stretches the residual runtime by
  ``old/new`` and expanding compresses it.

A per-job command cap ("a maximum count on number of ECCs can be
imposed for a given job") is enforced when ``max_eccs_per_job`` is
set.  The processor mutates jobs only; rescheduling the corresponding
finish events is the simulation runner's duty, driven by the returned
:class:`ECCResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.workload.ecc import ECC, ECCKind
from repro.workload.job import Job, JobState

#: Estimates can never shrink below this (a zero-length job is
#: meaningless in SWF-like workloads).
MIN_RUNTIME = 1.0


class ECCOutcome(Enum):
    """What happened to one command."""

    APPLIED_QUEUED = "applied-queued"
    APPLIED_RUNNING = "applied-running"
    TERMINATED_JOB = "terminated-job"  # RT reduced a running job to zero residual
    DROPPED_FINISHED = "dropped-finished"  # job already completed
    REJECTED_CAP = "rejected-cap"  # per-job ECC budget exhausted
    REJECTED_RESOURCE = "rejected-resource"  # EP/RP without opt-in / on running job

    @property
    def applied(self) -> bool:
        """Whether the job was actually modified."""
        return self in (
            ECCOutcome.APPLIED_QUEUED,
            ECCOutcome.APPLIED_RUNNING,
            ECCOutcome.TERMINATED_JOB,
        )


@dataclass(frozen=True)
class ECCResult:
    """Outcome of applying one ECC.

    Attributes:
        outcome: What happened.
        new_kill_by: For commands applied to *running* jobs: the job's
            new scheduled termination instant, so the runner can
            reschedule the finish event.  ``None`` otherwise.
        old_num: For resource commands applied to *running* jobs: the
            processor count before the resize, so the runner can patch
            the machine allocation and the active-list aggregate.
            ``None`` otherwise.
    """

    outcome: ECCOutcome
    new_kill_by: Optional[float] = None
    old_num: Optional[int] = None


class ECCProcessor:
    """FCFS processor for the elastic control queue.

    Args:
        max_eccs_per_job: Optional per-job command budget (user-issued
            commands only; scheduler-initiated commands bypass it).
        allow_resource_eccs: Opt-in for the queued-job EP/RP prototype.
        allow_running_resize: Opt-in for EP/RP on *running* jobs (the
            malleability primitive; docs/malleability.md).  Running
            resizes are work-conserving and respect the job's declared
            ``[min_procs, max_procs]`` range when present.
    """

    def __init__(
        self,
        max_eccs_per_job: Optional[int] = None,
        allow_resource_eccs: bool = False,
        machine_granularity: int = 1,
        machine_size: Optional[int] = None,
        allow_running_resize: bool = False,
    ) -> None:
        if max_eccs_per_job is not None and max_eccs_per_job < 0:
            raise ValueError("max_eccs_per_job must be non-negative")
        self.max_eccs_per_job = max_eccs_per_job
        self.allow_resource_eccs = allow_resource_eccs
        self.allow_running_resize = allow_running_resize
        self.machine_granularity = machine_granularity
        self.machine_size = machine_size
        self.stats: dict[ECCOutcome, int] = {outcome: 0 for outcome in ECCOutcome}

    # ------------------------------------------------------------------
    def apply(
        self,
        ecc: ECC,
        job: Job,
        now: float,
        *,
        free: Optional[int] = None,
        scheduler_initiated: bool = False,
    ) -> ECCResult:
        """Apply one command to its target job at time ``now``.

        Args:
            free: Free machine capacity at ``now``; caps how far an EP
                command can grow a running job (``None`` = unknown, EP
                on running jobs is then rejected).
            scheduler_initiated: The command was synthesized by a
                malleable policy rather than issued by the user; it
                bypasses ``max_eccs_per_job`` (the cap bounds *user*
                commands, §III-C) but still counts in ``ecc_count``.
        """
        result = self._apply(
            ecc, job, now, free=free, scheduler_initiated=scheduler_initiated
        )
        self.stats[result.outcome] += 1
        if result.outcome.applied:
            job.ecc_count += 1
        return result

    # ------------------------------------------------------------------
    def _apply(
        self,
        ecc: ECC,
        job: Job,
        now: float,
        *,
        free: Optional[int] = None,
        scheduler_initiated: bool = False,
    ) -> ECCResult:
        if job.state is JobState.FINISHED:
            return ECCResult(ECCOutcome.DROPPED_FINISHED)
        if (
            not scheduler_initiated
            and self.max_eccs_per_job is not None
            and job.ecc_count >= self.max_eccs_per_job
        ):
            return ECCResult(ECCOutcome.REJECTED_CAP)
        if ecc.kind.is_procs:
            if job.state is JobState.RUNNING:
                return self._apply_running_resize(ecc, job, now, free)
            return self._apply_resource(ecc, job)
        return self._apply_time(ecc, job, now)

    def _apply_time(self, ecc: ECC, job: Job, now: float) -> ECCResult:
        assert job.actual is not None
        delta = ecc.signed_amount()
        if job.state is JobState.RUNNING:
            assert job.start_time is not None
            elapsed = now - job.start_time
            new_estimate = max(elapsed, job.estimate + delta)
            new_actual = max(elapsed, job.actual + delta)
            job.estimate = new_estimate
            job.actual = new_actual
            new_kill_by = job.start_time + min(new_estimate, new_actual)
            if new_kill_by <= now:
                return ECCResult(ECCOutcome.TERMINATED_JOB, new_kill_by=now)
            return ECCResult(ECCOutcome.APPLIED_RUNNING, new_kill_by=new_kill_by)
        # Queued (or pending) job: adjust the declared requirement.
        job.estimate = max(MIN_RUNTIME, job.estimate + delta)
        job.actual = max(MIN_RUNTIME, job.actual + delta)
        return ECCResult(ECCOutcome.APPLIED_QUEUED)

    def _range_bounds(self, job: Job) -> tuple[int, Optional[int]]:
        """Granularity-snapped ``[lo, hi]`` resize bounds for ``job``.

        The machine floor/ceiling always applies; a declared
        ``[min_procs, max_procs]`` range tightens it (rounded inward to
        the granularity, so every admissible size is allocatable).
        """
        gran = self.machine_granularity
        lo = gran
        hi = self.machine_size
        if job.min_procs is not None:
            lo = max(lo, -(-job.min_procs // gran) * gran)  # ceil to gran
        if job.max_procs is not None:
            cap = (job.max_procs // gran) * gran  # floor to gran
            hi = cap if hi is None else min(hi, cap)
        return lo, hi

    def _apply_resource(self, ecc: ECC, job: Job) -> ECCResult:
        if not self.allow_resource_eccs:
            return ECCResult(ECCOutcome.REJECTED_RESOURCE)
        gran = self.machine_granularity
        delta = ecc.signed_amount()
        # Snap to the allocation granularity, clamp into [gran, M] and
        # any declared malleability range.
        new_num = int(round((job.num + delta) / gran)) * gran
        lo, hi = self._range_bounds(job)
        new_num = max(lo, new_num)
        if hi is not None:
            new_num = min(hi, new_num)
        job.num = new_num
        return ECCResult(ECCOutcome.APPLIED_QUEUED)

    def _apply_running_resize(
        self, ecc: ECC, job: Job, now: float, free: Optional[int]
    ) -> ECCResult:
        """EP/RP on a running job: the malleability primitive.

        Work-conserving semantics: the remaining processor-seconds
        (``(kill_by - now) * num`` under a linear-speedup model) are
        preserved, so both ``estimate`` and ``actual`` rescale their
        residual by ``old_num / new_num`` and the kill-by time moves.
        The new size is snapped to the granularity and clamped into
        the machine and ``[min_procs, max_procs]`` bounds; expansion
        is additionally capped by the ``free`` capacity.  A command
        the clamps reduce to a no-op is rejected.
        """
        if not self.allow_running_resize:
            return ECCResult(ECCOutcome.REJECTED_RESOURCE)
        assert job.start_time is not None and job.actual is not None
        gran = self.machine_granularity
        delta = ecc.signed_amount()
        new_num = int(round((job.num + delta) / gran)) * gran
        lo, hi = self._range_bounds(job)
        new_num = max(lo, new_num)
        if hi is not None:
            new_num = min(hi, new_num)
        if new_num > job.num:
            if free is None:
                return ECCResult(ECCOutcome.REJECTED_RESOURCE)
            # Cap growth at the free capacity (snapped down to gran).
            headroom = (free // gran) * gran
            new_num = min(new_num, job.num + headroom)
        if new_num == job.num:
            return ECCResult(ECCOutcome.REJECTED_RESOURCE)
        old_num = job.num
        elapsed = now - job.start_time
        factor = old_num / new_num
        remaining_estimate = max(0.0, job.estimate - elapsed)
        remaining_actual = max(0.0, job.actual - elapsed)
        job.num = new_num
        job.estimate = elapsed + remaining_estimate * factor
        job.actual = elapsed + remaining_actual * factor
        new_kill_by = job.start_time + min(job.estimate, job.actual)
        if new_kill_by <= now:
            # Residual was zero (resize at the kill-by instant): the
            # job terminates now, at its new size.
            return ECCResult(
                ECCOutcome.TERMINATED_JOB, new_kill_by=now, old_num=old_num
            )
        return ECCResult(
            ECCOutcome.APPLIED_RUNNING, new_kill_by=new_kill_by, old_num=old_num
        )


__all__ = ["ECCOutcome", "ECCProcessor", "ECCResult", "MIN_RUNTIME"]
