"""The ECC processor — runtime elasticity (§III-C, Figure 3).

Elastic Control Commands arrive on their own FCFS *elastic control
queue* and are applied by the ECC processor to previously submitted
jobs, whether still queued or already running:

- **ET** extends the execution-time requirement: the kill-by time of a
  running job moves later; a queued job's estimate grows.
- **RT** reduces it: a running job's kill-by moves earlier, clamped at
  *now* (a reduction below the already-elapsed time terminates the job
  immediately); a queued job's estimate shrinks, clamped at a minimal
  runtime.
- **EP/RP** (resource dimension) are the paper's future work; a
  prototype is provided behind ``allow_resource_eccs`` and only for
  queued jobs (the flat machine model cannot resize live
  allocations), used by the ECC-intensity ablation.

A per-job command cap ("a maximum count on number of ECCs can be
imposed for a given job") is enforced when ``max_eccs_per_job`` is
set.  The processor mutates jobs only; rescheduling the corresponding
finish events is the simulation runner's duty, driven by the returned
:class:`ECCResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.workload.ecc import ECC, ECCKind
from repro.workload.job import Job, JobState

#: Estimates can never shrink below this (a zero-length job is
#: meaningless in SWF-like workloads).
MIN_RUNTIME = 1.0


class ECCOutcome(Enum):
    """What happened to one command."""

    APPLIED_QUEUED = "applied-queued"
    APPLIED_RUNNING = "applied-running"
    TERMINATED_JOB = "terminated-job"  # RT reduced a running job to zero residual
    DROPPED_FINISHED = "dropped-finished"  # job already completed
    REJECTED_CAP = "rejected-cap"  # per-job ECC budget exhausted
    REJECTED_RESOURCE = "rejected-resource"  # EP/RP without opt-in / on running job

    @property
    def applied(self) -> bool:
        """Whether the job was actually modified."""
        return self in (
            ECCOutcome.APPLIED_QUEUED,
            ECCOutcome.APPLIED_RUNNING,
            ECCOutcome.TERMINATED_JOB,
        )


@dataclass(frozen=True)
class ECCResult:
    """Outcome of applying one ECC.

    Attributes:
        outcome: What happened.
        new_kill_by: For commands applied to *running* jobs: the job's
            new scheduled termination instant, so the runner can
            reschedule the finish event.  ``None`` otherwise.
    """

    outcome: ECCOutcome
    new_kill_by: Optional[float] = None


class ECCProcessor:
    """FCFS processor for the elastic control queue.

    Args:
        max_eccs_per_job: Optional per-job command budget.
        allow_resource_eccs: Opt-in for the EP/RP prototype.
    """

    def __init__(
        self,
        max_eccs_per_job: Optional[int] = None,
        allow_resource_eccs: bool = False,
        machine_granularity: int = 1,
        machine_size: Optional[int] = None,
    ) -> None:
        if max_eccs_per_job is not None and max_eccs_per_job < 0:
            raise ValueError("max_eccs_per_job must be non-negative")
        self.max_eccs_per_job = max_eccs_per_job
        self.allow_resource_eccs = allow_resource_eccs
        self.machine_granularity = machine_granularity
        self.machine_size = machine_size
        self.stats: dict[ECCOutcome, int] = {outcome: 0 for outcome in ECCOutcome}

    # ------------------------------------------------------------------
    def apply(self, ecc: ECC, job: Job, now: float) -> ECCResult:
        """Apply one command to its target job at time ``now``."""
        result = self._apply(ecc, job, now)
        self.stats[result.outcome] += 1
        if result.outcome.applied:
            job.ecc_count += 1
        return result

    # ------------------------------------------------------------------
    def _apply(self, ecc: ECC, job: Job, now: float) -> ECCResult:
        if job.state is JobState.FINISHED:
            return ECCResult(ECCOutcome.DROPPED_FINISHED)
        if self.max_eccs_per_job is not None and job.ecc_count >= self.max_eccs_per_job:
            return ECCResult(ECCOutcome.REJECTED_CAP)
        if ecc.kind.is_procs:
            return self._apply_resource(ecc, job)
        return self._apply_time(ecc, job, now)

    def _apply_time(self, ecc: ECC, job: Job, now: float) -> ECCResult:
        assert job.actual is not None
        delta = ecc.signed_amount()
        if job.state is JobState.RUNNING:
            assert job.start_time is not None
            elapsed = now - job.start_time
            new_estimate = max(elapsed, job.estimate + delta)
            new_actual = max(elapsed, job.actual + delta)
            job.estimate = new_estimate
            job.actual = new_actual
            new_kill_by = job.start_time + min(new_estimate, new_actual)
            if new_kill_by <= now:
                return ECCResult(ECCOutcome.TERMINATED_JOB, new_kill_by=now)
            return ECCResult(ECCOutcome.APPLIED_RUNNING, new_kill_by=new_kill_by)
        # Queued (or pending) job: adjust the declared requirement.
        job.estimate = max(MIN_RUNTIME, job.estimate + delta)
        job.actual = max(MIN_RUNTIME, job.actual + delta)
        return ECCResult(ECCOutcome.APPLIED_QUEUED)

    def _apply_resource(self, ecc: ECC, job: Job) -> ECCResult:
        if not self.allow_resource_eccs or job.state is JobState.RUNNING:
            return ECCResult(ECCOutcome.REJECTED_RESOURCE)
        gran = self.machine_granularity
        delta = ecc.signed_amount()
        # Snap to the allocation granularity, clamp into [gran, M].
        new_num = int(round((job.num + delta) / gran)) * gran
        new_num = max(gran, new_num)
        if self.machine_size is not None:
            new_num = min(self.machine_size, new_num)
        job.num = new_num
        return ECCResult(ECCOutcome.APPLIED_QUEUED)


__all__ = ["ECCOutcome", "ECCProcessor", "ECCResult", "MIN_RUNTIME"]
