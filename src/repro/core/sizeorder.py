"""Greedy ordered-queue baselines from the related work (§II-B).

The paper's state-of-the-art survey discusses three pre-backfilling
policies, all of which reorder the waiting queue instead of honouring
FCFS:

- *shortest-job-first* [3]: pick the shortest estimated runtime that
  fits ("must precisely estimate jobs' execution times"),
- *smallest-job-first* (Majumdar et al. [10]): pick the fewest
  processors that fit — found to "cause large fragmentation",
- *largest-job-first* (Li et al. [11]): pick the most processors that
  fit, motivated by first-fit-decreasing bin packing.

Studies [5], [13] found none of these "necessarily perform better than
a straightforward FCFS" — a claim
``benchmarks/bench_related_work_shootout.py`` revisits on the paper's
workload model.  None of them protects the queue head, so large jobs
can be overtaken indefinitely while arrivals continue (they cannot
starve forever on finite workloads: once arrivals cease the machine
drains and everything fits).
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

from repro.core.base import CycleDecision, Scheduler, SchedulerContext
from repro.workload.job import Job


class GreedyOrderedPolicy(Scheduler):
    """Starts, each pass, the best-priority queued job that fits.

    Subclasses define :meth:`priority`; lower sorts first.  Ties break
    by arrival then id, keeping the policies deterministic.
    """

    @abc.abstractmethod
    def priority(self, job: Job) -> float:
        """Primary sort key (lower = preferred)."""

    def cycle(self, ctx: SchedulerContext) -> CycleDecision:
        m = ctx.free
        if m <= 0 or not ctx.batch_queue:
            return CycleDecision.nothing()
        candidates = [job for job in ctx.batch_queue if job.num <= m]
        if not candidates:
            return CycleDecision.nothing()
        best = min(
            candidates, key=lambda job: (self.priority(job), job.submit, job.job_id)
        )
        return CycleDecision(starts=[best])


class ShortestJobFirst(GreedyOrderedPolicy):
    """SJF [3]: prefer the shortest user-estimated runtime."""

    name = "SJF"

    def priority(self, job: Job) -> float:
        return job.estimate


class SmallestJobFirst(GreedyOrderedPolicy):
    """Smallest-job-first [10]: prefer the fewest requested processors.

    Majumdar et al. found it performs poorly — small jobs "do not
    necessarily terminate quickly and cause large fragmentation".
    """

    name = "SMALLEST"

    def priority(self, job: Job) -> float:
        return job.num


class LargestJobFirst(GreedyOrderedPolicy):
    """Largest-job-first [11]: prefer the most requested processors.

    First-fit-decreasing intuition from bin packing [12]; "large jobs
    do not necessarily require long execution times".
    """

    name = "LJF"

    def priority(self, job: Job) -> float:
        return -job.num


__all__ = [
    "GreedyOrderedPolicy",
    "LargestJobFirst",
    "ShortestJobFirst",
    "SmallestJobFirst",
]
