"""Scheduling algorithms — the paper's contribution and its baselines.

Implemented policies (Table III of the paper):

========================  =============================================
Registry name             Class / construction
========================  =============================================
``FCFS``                  :class:`~repro.core.fcfs.FCFS` (extra baseline)
``CONSERVATIVE``          :class:`~repro.core.conservative.ConservativeBackfill`
``EASY``                  :class:`~repro.core.easy.EasyBackfill`
``LOS``                   :class:`~repro.core.los.LOS`
``Delayed-LOS``           :class:`~repro.core.delayed_los.DelayedLOS`
``EASY-D``                :class:`~repro.core.dedicated.EasyBackfillDedicated`
``LOS-D``                 :class:`~repro.core.dedicated.LOSDedicated`
``Hybrid-LOS``            :class:`~repro.core.hybrid_los.HybridLOS`
``*-E`` / ``*-DE``        same classes with ``elastic=True``
========================  =============================================

The dynamic programs at the heart of the LOS family (``Basic_DP`` and
``Reservation_DP``) live in :mod:`repro.core.dp` and are shared by
LOS, Delayed-LOS, Hybrid-LOS and the -D variants.
"""

from repro.core.audit import AuditViolation, AuditingScheduler
from repro.core.base import CycleDecision, Scheduler, SchedulerContext
from repro.core.conservative import ConservativeBackfill
from repro.core.dedicated import EasyBackfillDedicated, LOSDedicated
from repro.core.delayed_los import DelayedLOS
from repro.core.dp import (
    DPSelection,
    basic_dp,
    basic_dp_select,
    reservation_dp,
    reservation_dp_select,
)
from repro.core.easy import EasyBackfill
from repro.core.elastic import ECCProcessor, ECCResult
from repro.core.fcfs import FCFS
from repro.core.hybrid_los import HybridLOS
from repro.core.los import LOS
from repro.core.memo import clear_caches, memo_enabled
from repro.core.registry import ALGORITHMS, make_scheduler
from repro.core.selector import AdaptiveSelector

__all__ = [
    "ALGORITHMS",
    "AdaptiveSelector",
    "AuditViolation",
    "AuditingScheduler",
    "ConservativeBackfill",
    "CycleDecision",
    "DPSelection",
    "DelayedLOS",
    "ECCProcessor",
    "ECCResult",
    "EasyBackfill",
    "EasyBackfillDedicated",
    "FCFS",
    "HybridLOS",
    "LOS",
    "LOSDedicated",
    "Scheduler",
    "SchedulerContext",
    "basic_dp",
    "basic_dp_select",
    "clear_caches",
    "make_scheduler",
    "memo_enabled",
    "reservation_dp",
    "reservation_dp_select",
]
