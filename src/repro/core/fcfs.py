"""Plain first-come-first-served scheduling.

The related-work baseline ([5], [13]): the head of the queue starts as
soon as it fits; nothing ever jumps the queue.  Included because the
backfilling literature (and our ablation benches) measure EASY/LOS
gains against it.
"""

from __future__ import annotations

from repro.core.base import (
    REASON_INSUFFICIENT,
    CycleDecision,
    Scheduler,
    SchedulerContext,
)


class FCFS(Scheduler):
    """Strict FCFS: no backfilling, no reservations needed.

    Each pass starts the head job when it fits; the runner's fix-point
    loop drains as many consecutive head jobs as capacity allows.
    """

    name = "FCFS"

    def cycle(self, ctx: SchedulerContext) -> CycleDecision:
        head = ctx.batch_queue.head
        if head is not None and head.num <= ctx.free:
            return CycleDecision(starts=[head])
        if head is not None and ctx.explain is not None:
            ctx.explain(head, REASON_INSUFFICIENT)
        return CycleDecision.nothing()


__all__ = ["FCFS"]
