"""EASY backfill (Mu'alem & Feitelson [6]).

Aggressive backfilling: the head job starts as soon as it fits; when
it does not fit, a *shadow* reservation is computed for it (the
earliest instant enough running jobs terminate) and any later queued
job may start now provided it does not delay the head — i.e. it either
terminates by the shadow time or fits into the "extra" processors that
remain free at the shadow time after the head is placed.

The shadow computation is shared with the LOS family
(:func:`repro.core.freeze.batch_head_freeze` — the paper calls the
same quantities freeze end time/capacity).

Each ``cycle`` pass emits at most one start; the runner's fix-point
loop re-invokes until quiescent, so the shadow is recomputed against
real state after every activation.  This is equivalent to the classic
single-scan formulation (each started job joins the active list and
shrinks the recomputed extra capacity exactly as the scan's local
bookkeeping would) and keeps the policy trivially auditable.
"""

from __future__ import annotations

from repro.core.base import (
    REASON_INSUFFICIENT,
    REASON_RESERVATION,
    CycleDecision,
    Scheduler,
    SchedulerContext,
)
from repro.core.freeze import batch_head_freeze
from repro.obs.spans import begin as _span_begin, end as _span_end
from repro.obs.telemetry import bump


class EasyBackfill(Scheduler):
    """EASY: FCFS plus aggressive backfilling against the head job."""

    name = "EASY"

    def cycle(self, ctx: SchedulerContext) -> CycleDecision:
        queue = ctx.batch_queue
        head = queue.head
        if head is None:
            return CycleDecision.nothing()
        m = ctx.free
        if head.num <= m:
            return CycleDecision(starts=[head])
        explain = ctx.explain
        if explain is not None:
            explain(head, REASON_INSUFFICIENT)
        if len(queue) == 1 or m <= 0:
            return CycleDecision.nothing()

        token = _span_begin("backfill")
        try:
            shadow = batch_head_freeze(ctx, head)
            # Telemetry is accumulated locally and reported once per cycle:
            # a bump() per scanned candidate would dominate this tight loop.
            scanned = 0
            if explain is None and ctx.memo:
                # Size-indexed fast path: only jobs with num <= m can
                # backfill, and the queue's size index yields exactly
                # those, in queue order — the first match is the same
                # job the full scan would pick (the scan requires
                # num <= m before any other test).  The head never
                # appears: head.num > m on this branch.  Under
                # saturation this skips the too-wide majority of a
                # deep backlog (docs/performance.md).
                fret = shadow.fret
                frec = shadow.frec
                now = ctx.now
                for job in queue.iter_fitting(m):
                    scanned += 1
                    if now + job.estimate <= fret or job.num <= frec:
                        bump("backfill_attempts", scanned)
                        bump("backfill_starts")
                        return CycleDecision(starts=[job])
                bump("backfill_attempts", scanned)
                return CycleDecision.nothing()
            # Full scan: the provenance (ctx.explain) and REPRO_NO_MEMO
            # reference path.  Iterates the queue in place — no
            # per-pass snapshot copy.
            tail = iter(queue)
            next(tail)  # skip the head
            for job in tail:
                if job.num > m:
                    if explain is not None:
                        explain(job, REASON_INSUFFICIENT)
                    continue
                scanned += 1
                ends_by_shadow = ctx.now + job.estimate <= shadow.fret
                fits_extra = job.num <= shadow.frec
                if ends_by_shadow or fits_extra:
                    bump("backfill_attempts", scanned)
                    bump("backfill_starts")
                    return CycleDecision(starts=[job])
                if explain is not None:
                    explain(job, REASON_RESERVATION)
            bump("backfill_attempts", scanned)
            return CycleDecision.nothing()
        finally:
            _span_end(token)


__all__ = ["EasyBackfill"]
