"""Hybrid-LOS — Algorithms 2 and 3 of the paper.

Extends Delayed-LOS to heterogeneous workloads: batch jobs are packed
for utilization *around* explicit reservations for dedicated
(interactive) jobs whose start times are rigid.

Per-pass logic (Algorithm 2; the runner loops each event to fix-point):

- no dedicated jobs waiting → plain Delayed-LOS (line 4);
- the dedicated head is due (``start <= t``) → move it to the head of
  the batch queue with ``scount = C_s`` so it starts as soon as
  capacity permits (Algorithm 3, lines 6–7 / 39–42);
- the dedicated head starts in the future → compute the dedicated
  freeze (lines 8–26, including the insufficient-capacity re-anchor)
  and pack batch jobs with ``Reservation_DP`` so none overruns the
  reserved capacity (lines 18–33); skipping the batch head increments
  its ``scount``;
- the batch head has exhausted its skips (``scount >= C_s``) → start
  it right away (lines 35–37).  The paper's pseudo-code omits the
  capacity check here; we guard it (a head larger than the free
  capacity physically cannot start) and fall back to dedicated-aware
  reservation packing until capacity frees up.

``C_s = 0`` yields LOS-D — the paper's "LOS appended with the
dedicated job queue" baseline (see :mod:`repro.core.dedicated`).
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import (
    REASON_FREEZE_WINDOW,
    REASON_INSUFFICIENT,
    CycleDecision,
    SchedulerContext,
)
from repro.core.delayed_los import DelayedLOS
from repro.core.dp import DEFAULT_LOOKAHEAD, reservation_dp_select
from repro.core.freeze import dedicated_freeze


class HybridLOS(DelayedLOS):
    """Algorithm 2: Hybrid_LOS_Scheduler for heterogeneous workloads."""

    name = "Hybrid-LOS"
    handles_dedicated = True

    def __init__(
        self,
        max_skip_count: int = 7,
        lookahead: Optional[int] = DEFAULT_LOOKAHEAD,
        elastic: bool = False,
    ) -> None:
        super().__init__(
            max_skip_count=max_skip_count, lookahead=lookahead, elastic=elastic
        )

    # ------------------------------------------------------------------
    def cycle(self, ctx: SchedulerContext) -> CycleDecision:
        """One pass of Algorithm 2."""
        m = ctx.free
        batch = ctx.batch_queue
        dedicated = ctx.dedicated_queue

        if m > 0 and batch:
            if not dedicated:
                # Line 4: homogeneous situation — defer to Algorithm 1.
                return super().cycle(ctx)

            head = batch.head
            assert head is not None
            if head.scount >= self.max_skip_count:
                # Lines 35-37 (capacity-guarded, see module docstring).
                if head.num <= m:
                    return CycleDecision(starts=[head])
                if ctx.explain is not None:
                    ctx.explain(head, REASON_INSUFFICIENT)
                promotion = self._promotion(ctx)
                if promotion is not None:
                    return promotion
                return self._pack_around_dedicated(ctx, bump_scount=False)

            # Lines 5-34: scount < C_s with dedicated jobs waiting.
            promotion = self._promotion(ctx)
            if promotion is not None:
                # Lines 6-7: the dedicated head is due.
                return promotion
            return self._pack_around_dedicated(ctx, bump_scount=True)

        # Lines 39-42: no batch work possible; still honour due
        # dedicated start times.
        if dedicated:
            promotion = self._promotion(ctx)
            if promotion is not None:
                return promotion
        return CycleDecision.nothing()

    # ------------------------------------------------------------------
    def _promotion(self, ctx: SchedulerContext) -> Optional[CycleDecision]:
        """Algorithm 3: due dedicated head moves to the batch head with
        ``scount = C_s`` so it activates as soon as capacity permits."""
        promotion = self.due_dedicated_promotion(ctx)
        if promotion is not None:
            for job in promotion.promotions:
                job.scount = self.max_skip_count
        return promotion

    # ------------------------------------------------------------------
    def _pack_around_dedicated(
        self, ctx: SchedulerContext, bump_scount: bool
    ) -> CycleDecision:
        """Lines 8-33: Reservation_DP around the dedicated freeze."""
        head = ctx.batch_queue.head
        assert head is not None
        freeze = dedicated_freeze(ctx)
        selection = reservation_dp_select(
            ctx.batch_queue,
            ctx.free,
            freeze_capacity=freeze.frec,
            freeze_time=freeze.fret,
            now=ctx.now,
            granularity=ctx.machine.granularity,
            lookahead=self.lookahead,
            memo=ctx.memo,
        )
        if not selection.head_selected:
            if bump_scount and ctx.allow_scount_increment:
                # Lines 22 / 30: skipping the batch head counts.
                head.scount += 1
            if ctx.explain is not None:
                # Held back by the dedicated reservation's freeze window.
                ctx.explain(head, REASON_FREEZE_WINDOW)
        return CycleDecision(starts=selection.jobs)


__all__ = ["HybridLOS"]
