"""Freeze (shadow) time and capacity computations.

The LOS family makes one reservation per cycle and packs jobs around
it.  Two kinds of reservation appear in the paper:

- the *batch-head* reservation of Algorithm 1 lines 13–15 (identical
  to the EASY/LOS shadow time: the earliest instant enough running
  jobs have terminated for the head job to fit), and
- the *dedicated* reservation of Algorithm 2 lines 8–26, anchored at
  the rigid requested start of the dedicated head group (all dedicated
  jobs sharing that start time), with a fallback anchor when even the
  whole machine cannot host the group at its requested start.

Both produce a :class:`FreezeSpec` consumed by
:func:`repro.core.dp.reservation_dp` and by EASY's backfill test.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import SchedulerContext
from repro.workload.job import Job


@dataclass(frozen=True)
class FreezeSpec:
    """One reservation: nothing may overrun it beyond ``frec``.

    Attributes:
        fret: Freeze end time (the paper's ``fret_b`` / ``fret_d``;
            the shadow time of [7]).
        frec: Freeze end capacity — processors that remain free at
            ``fret`` *after* honouring the reservation; jobs running
            past ``fret`` must fit inside it.
        sufficient: For dedicated reservations: whether the requested
            start time could be honoured (Algorithm 2 line 17).  False
            means the dedicated group will start late — "unavoidable
            due to insufficient capacity" (§III-B).
    """

    fret: float
    frec: int
    sufficient: bool = True


def batch_head_freeze(ctx: SchedulerContext, head: Job) -> FreezeSpec:
    """Algorithm 1 lines 13–15: reservation for a too-big head job.

    Finds the smallest ``s`` such that the head fits once the ``s``
    shortest-residual running jobs have terminated, then::

        fret_b = t + a_s.res
        frec_b = m + Σ_{i=1..s} a_i.num − w_1^b.num

    Requires ``head.num > ctx.free`` (otherwise no reservation is
    needed) and relies on the active list's residual ordering.
    """
    m = ctx.free
    if head.num <= m:
        raise ValueError(
            f"head job {head.job_id} fits free capacity ({head.num} <= {m}); "
            "no reservation needed"
        )
    cumulative = 0
    for active_job in ctx.active:
        cumulative += active_job.num
        if m + cumulative >= head.num:
            return FreezeSpec(
                fret=ctx.now + active_job.residual(ctx.now),
                frec=m + cumulative - head.num,
                sufficient=True,
            )
    if ctx.machine.offline:
        # Degraded machine (fault injection): even a full drain cannot
        # host the head until psets are repaired.  Anchor at the last
        # termination with zero freeze capacity — nothing may backfill
        # past it — and let repairs re-trigger the cycle.
        last = ctx.active.last()
        anchor = ctx.now + (last.residual(ctx.now) if last is not None else 0.0)
        return FreezeSpec(fret=anchor, frec=0, sufficient=False)
    # Unreachable when job sizes are validated against the machine:
    # m + Σ all active = M >= head.num.
    raise AssertionError(
        f"head job {head.job_id} (num={head.num}) cannot fit machine "
        f"(free={m}, active={cumulative})"
    )


def dedicated_freeze(ctx: SchedulerContext) -> FreezeSpec:
    """Algorithm 2 lines 8–30: reservation for the dedicated head group.

    Computes the capacity free at the dedicated head's requested start
    (``frec_d``), reserves the whole same-start group
    (``tot_start_num``), and — when the group cannot fit at its
    requested start — re-anchors the freeze at the earliest instant
    enough running jobs have terminated (lines 24–26), accepting the
    unavoidable delay.

    Requires a non-empty dedicated queue with a future head start.
    """
    dedicated = ctx.dedicated_queue
    now = ctx.now
    head = dedicated.head
    if head is None:
        raise ValueError("dedicated queue is empty")
    start = head.requested_start
    assert start is not None
    if start <= now:
        raise ValueError(
            f"dedicated head {head.job_id} is already due "
            f"(start={start} <= t={now}); promote it instead"
        )

    # Offline psets (fault injection) are unavailable to reservations;
    # optimistically assuming their repair would overcommit the freeze.
    machine_size = ctx.machine.available
    active = ctx.active
    last = active.last()

    # Lines 9–15: capacity free at the requested start.
    if last is not None and start <= now + last.residual(now):
        # A running job's kill-by never precedes the clock, so
        # "t + res >= start" is exactly "kill_by >= start" here
        # (start > t is checked above) — answerable from the active
        # list's aggregated release steps without scanning every job.
        still_running = active.used_at(start, rebuild=not ctx.memo)
        frec = machine_size - still_running
    else:
        frec = machine_size

    # Lines 16–17: the whole identical-start head group is reserved
    # together.
    group = dedicated.cohead_group()
    tot_start_num = group[0].num if len(group) == 1 else sum(job.num for job in group)

    if tot_start_num <= frec:
        # Lines 18–22: reservation honoured on time.
        return FreezeSpec(fret=start, frec=frec - tot_start_num, sufficient=True)

    # Lines 24–26: insufficient capacity at the requested start; anchor
    # at the earliest instant the group fits.  When the group exceeds
    # the machine itself, fall back to the last termination with zero
    # freeze capacity (everything must drain first).
    m = ctx.free
    cumulative = 0
    for active_job in ctx.active:
        cumulative += active_job.num
        if m + cumulative >= tot_start_num:
            return FreezeSpec(
                fret=ctx.now + active_job.residual(ctx.now),
                frec=m + cumulative - tot_start_num,
                sufficient=False,
            )
    anchor = ctx.now + (last.residual(ctx.now) if last is not None else 0.0)
    return FreezeSpec(fret=anchor, frec=max(0, machine_size - tot_start_num), sufficient=False)


__all__ = ["FreezeSpec", "batch_head_freeze", "dedicated_freeze"]
