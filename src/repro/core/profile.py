"""Free-capacity profile over future time.

A :class:`CapacityProfile` is the step function of free processors
from ``now`` onward, given the running jobs' (estimate-based) kill-by
times and any reservations already made.  Conservative backfill plans
every queued job against it; tests use it as an independent oracle for
EASY/LOS shadow computations.
"""

from __future__ import annotations

import bisect
import math
from typing import List, Tuple

from repro.core.memo import memo_enabled
from repro.queues.active_list import ActiveList


class CapacityProfile:
    """Piecewise-constant free capacity on ``[now, ∞)``.

    Internally a sorted list of breakpoints ``(time, free)`` where
    ``free`` holds from that time until the next breakpoint; the last
    breakpoint extends to infinity.
    """

    def __init__(self, total: int, now: float, free: int) -> None:
        if not 0 <= free <= total:
            raise ValueError(f"free={free} outside [0, {total}]")
        self.total = total
        self.now = now
        self._times: List[float] = [now]
        self._free: List[int] = [free]

    # ------------------------------------------------------------------
    @classmethod
    def from_active(
        cls,
        total: int,
        now: float,
        active: ActiveList,
        memo: "bool | None" = None,
    ) -> "CapacityProfile":
        """Profile implied by the running jobs' kill-by times.

        Consumes the active list's incrementally-maintained release
        breakpoints and builds the step function with one cumulative
        pass — O(breakpoints) instead of the O(A²) repeated
        ``_add_delta`` construction.  Releases at or before ``now``
        (over-estimate jobs still draining) fold into the initial free
        capacity, exactly as the old ``max(now, kill_by)`` clamp did.
        With ``REPRO_NO_MEMO`` set the breakpoints are rebuilt from the
        job list on every call (each rebuild counted by the
        ``profile_rebuilds`` telemetry counter).  ``memo`` takes the
        runner's per-run snapshot (``ctx.memo``); ``None`` consults the
        environment directly.
        """
        profile = cls(total, now, total - active.total_used)
        if memo is None:
            memo = memo_enabled()
        times, nums = active.release_breakpoints(rebuild=not memo)
        running = profile._free[0]
        for time, num in zip(times, nums):
            running += num
            if time <= now:
                profile._free[0] = running
            else:
                profile._times.append(time)
                profile._free.append(running)
        return profile

    def _add_delta(self, time: float, delta: int) -> None:
        """Shift free capacity by ``delta`` from ``time`` onward."""
        index = bisect.bisect_right(self._times, time) - 1
        if self._times[index] != time:
            self._times.insert(index + 1, time)
            self._free.insert(index + 1, self._free[index])
            index += 1
        for i in range(index, len(self._free)):
            self._free[i] += delta

    # ------------------------------------------------------------------
    def free_at(self, time: float) -> int:
        """Free processors at ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"time {time} precedes profile start {self.now}")
        index = bisect.bisect_right(self._times, time) - 1
        return self._free[index]

    def min_free(self, start: float, duration: float) -> int:
        """Minimum free capacity over ``[start, start + duration)``."""
        if duration <= 0:
            return self.free_at(start)
        end = start + duration
        lowest = self.free_at(start)
        index = bisect.bisect_right(self._times, start)
        while index < len(self._times) and self._times[index] < end:
            lowest = min(lowest, self._free[index])
            index += 1
        return lowest

    def earliest_start(self, num: int, duration: float) -> float:
        """Earliest ``t >= now`` with ``num`` processors free for ``duration``.

        Raises:
            ValueError: when ``num`` exceeds the machine (never feasible).
        """
        if num > self.total:
            raise ValueError(f"request {num} exceeds machine size {self.total}")
        for candidate in self._times:
            start = max(candidate, self.now)
            if self.min_free(start, duration) >= num:
                return start
        # The profile's final segment always has total free capacity in
        # well-formed simulations, so this is unreachable; guard anyway.
        return self._times[-1]  # pragma: no cover

    def reserve(self, start: float, num: int, duration: float) -> None:
        """Subtract ``num`` processors over ``[start, start + duration)``.

        Raises:
            ValueError: when the reservation would drive capacity
                negative (planner bug).
        """
        if self.min_free(start, duration) < num:
            raise ValueError(
                f"reservation of {num} procs at t={start} for {duration}s "
                "exceeds available capacity"
            )
        self._add_delta(start, -num)
        if math.isfinite(duration):
            self._add_delta(start + duration, num)

    def breakpoints(self) -> List[Tuple[float, int]]:
        """Snapshot of (time, free) steps (tests/debugging)."""
        return list(zip(self._times, self._free))


__all__ = ["CapacityProfile"]
