"""Scheduler-initiated malleability — the Malleable-* policy family.

The paper's elasticity is strictly *job-initiated*: ECC records arrive
with the workload and the scheduler only reacts (§III-C).  Real
malleable systems invert the control flow — the *scheduler* decides
when to shrink or expand running jobs, to start the queue head sooner
or to soak idle capacity ("Evaluating Malleable Job Scheduling in HPC
Clusters using Real-World Workloads", PAPERS.md).  This module builds
that inversion on top of the existing ECC machinery: policies emit
*synthetic* EP/RP commands in :attr:`CycleDecision.commands
<repro.core.base.CycleDecision>` and the runner pushes them through
the very same :class:`~repro.core.elastic.ECCProcessor` path as
workload commands, so engine semantics, trace export, checkpointing
and the 1e-9 metrics oracles apply verbatim (docs/malleability.md).

Only jobs that declared a ``[min_procs, max_procs]`` range are ever
touched (``Job.is_malleable``); on an all-rigid workload every policy
here is bit-for-bit its inner policy.  Resizes are work-conserving
(linear speedup): shrinking a running job frees processors now but
stretches its residual runtime by ``old/new``, which is exactly the
trade-off the decision rules below weigh.

Decision rules (after the wrapped rigid policy finds nothing to do):

- **Shrink-to-start** (*average steal*): when the queue head does not
  fit, steal capacity as evenly as possible from the running malleable
  jobs — one granularity unit per donor per round, donors in job-id
  order — until the head fits.  All-or-nothing: if the donors cannot
  cover the deficit even at their minima, nobody shrinks.
- **Agreement threshold**: the steal only proceeds when at least a
  ``agreement`` fraction of the running malleable jobs can donate
  (have slack above their minimum) — the donors must "agree" as a
  population, not be bled one by one.
- **Expand-to-soak** (*pref common pool*): when the batch queue is
  empty and processors idle, grow running malleable jobs toward their
  preferred size first (in job-id order), then — for
  :class:`MalleableBackfill` — toward their maxima.

>>> from repro.core.registry import make_scheduler
>>> make_scheduler("Malleable-FCFS").malleable
True
>>> make_scheduler("Malleable-Backfill").handles_dedicated
False
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.core.base import (
    REASON_SHRINK_INFEASIBLE,
    CycleDecision,
    Scheduler,
    SchedulerContext,
)
from repro.core.easy import EasyBackfill
from repro.core.fcfs import FCFS
from repro.workload.ecc import ECC, ECCKind
from repro.workload.job import Job


def _floor_to(value: int, gran: int) -> int:
    return (value // gran) * gran


def _ceil_to(value: int, gran: int) -> int:
    return -(-value // gran) * gran


def shrink_floor(job: Job, gran: int) -> int:
    """Smallest size ``job`` may shrink to (granularity-snapped).

    ``min_procs`` rounded *up* to the allocation granularity — never
    below one unit — so every admissible size stays allocatable.
    """
    assert job.min_procs is not None
    return max(gran, _ceil_to(job.min_procs, gran))


def expand_ceiling(job: Job, gran: int, machine_size: int) -> int:
    """Largest size ``job`` may grow to (granularity-snapped)."""
    assert job.max_procs is not None
    return min(machine_size, _floor_to(job.max_procs, gran))


def plan_average_steal(
    donors: List[Job], need: int, gran: int
) -> Optional[Dict[int, int]]:
    """Distribute a ``need``-processor steal evenly over ``donors``.

    Round-robin over the donors in list order, one granularity unit
    per donor per round, skipping donors already at their shrink
    floor.  All-or-nothing: returns ``None`` when the donors' combined
    slack cannot cover ``need`` — a partial steal would slow donors
    down without starting anything.

    Returns:
        job_id -> processors to steal (each a positive multiple of
        ``gran``), or ``None``.

    >>> from repro.workload.job import Job
    >>> a = Job(1, 0.0, num=128, estimate=100.0, min_procs=32, max_procs=128)
    >>> b = Job(2, 0.0, num=64, estimate=100.0, min_procs=32, max_procs=64)
    >>> plan_average_steal([a, b], need=96, gran=32)
    {1: 64, 2: 32}
    >>> plan_average_steal([a, b], need=160, gran=32) is None
    True
    """
    if need <= 0:
        return None
    slack = [job.num - shrink_floor(job, gran) for job in donors]
    if sum(slack) < need:
        return None
    need_units = math.ceil(need / gran)
    stolen = [0] * len(donors)
    while need_units > 0:
        progressed = False
        for index in range(len(donors)):
            if need_units == 0:
                break
            if slack[index] - stolen[index] * gran >= gran:
                stolen[index] += 1
                need_units -= 1
                progressed = True
        assert progressed, "slack check guarantees progress"
    return {
        donor.job_id: units * gran
        for donor, units in zip(donors, stolen)
        if units
    }


class _MalleableBase(Scheduler):
    """Shared mechanics of the Malleable-* family.

    Wraps a rigid *inner* policy and acts only when the inner pass is
    empty, so the family is a strict superset: every start the inner
    policy would make is made, and malleability only spends capacity
    the inner policy proved it cannot use.

    Args:
        inner: The rigid policy whose decisions are passed through.
        expand: Idle-capacity soaking mode — ``"none"``, ``"pref"``
            (grow to preferred sizes) or ``"max"`` (then on to maxima).
        agreement: Minimum fraction of running malleable jobs that
            must have donatable slack before any shrink proceeds
            (0.0 disables the gate).
    """

    handles_dedicated = False
    malleable = True

    def __init__(
        self,
        inner: Scheduler,
        *,
        expand: str = "none",
        agreement: float = 0.0,
        elastic: bool = True,
    ) -> None:
        if expand not in ("none", "pref", "max"):
            raise ValueError(f"expand must be none/pref/max, got {expand!r}")
        if not 0.0 <= agreement <= 1.0:
            raise ValueError(f"agreement must be in [0, 1], got {agreement}")
        class_name = type(self).name
        super().__init__(elastic=elastic)
        # The registry key is the canonical spelling; the base class
        # appended "-E" for the elastic flag, which the family's names
        # already imply.
        self.name = class_name
        self.inner = inner
        self.expand = expand
        self.agreement = agreement

    # ------------------------------------------------------------------
    def cycle(self, ctx: SchedulerContext) -> CycleDecision:
        decision = self.inner.cycle(ctx)
        if not decision.is_empty():
            return decision
        head = ctx.batch_queue.head
        if head is not None:
            return self._try_shrink_to_start(ctx, head)
        if self.expand != "none":
            return self._try_expand(ctx)
        return CycleDecision.nothing()

    # ------------------------------------------------------------------
    def _running_malleable(self, ctx: SchedulerContext) -> List[Job]:
        """Resizable running jobs, in deterministic job-id order.

        Jobs at their kill-by instant are excluded — their finish
        event fires before this cycle's commands could matter.
        """
        now = ctx.now
        jobs = [
            job
            for job in ctx.active
            if job.is_malleable and job.start_time is not None
            and job.start_time + job.estimate > now
        ]
        jobs.sort(key=lambda job: job.job_id)
        return jobs

    def _try_shrink_to_start(
        self, ctx: SchedulerContext, head: Job
    ) -> CycleDecision:
        need = head.num - ctx.free
        if need <= 0:
            # The inner policy chose not to start a fitting head (it
            # never does today — both FCFS and EASY start it), so
            # there is nothing for malleability to fix.
            return CycleDecision.nothing()
        gran = ctx.machine.granularity
        running = self._running_malleable(ctx)
        donors = [job for job in running if job.num > shrink_floor(job, gran)]
        if not donors:
            if ctx.explain is not None:
                ctx.explain(head, REASON_SHRINK_INFEASIBLE)
            return CycleDecision.nothing()
        if self.agreement > 0.0 and len(donors) < self.agreement * len(running):
            if ctx.explain is not None:
                ctx.explain(head, REASON_SHRINK_INFEASIBLE)
            return CycleDecision.nothing()
        plan = plan_average_steal(donors, need, gran)
        if plan is None:
            if ctx.explain is not None:
                ctx.explain(head, REASON_SHRINK_INFEASIBLE)
            return CycleDecision.nothing()
        commands = [
            ECC(
                job_id=job_id,
                issue_time=ctx.now,
                kind=ECCKind.REDUCE_PROCS,
                amount=amount,
            )
            for job_id, amount in plan.items()
        ]
        # The steal covers the deficit by construction, so the head
        # starts in the same decision — commands apply first.
        return CycleDecision(starts=[head], commands=commands)

    def _try_expand(self, ctx: SchedulerContext) -> CycleDecision:
        gran = ctx.machine.granularity
        free = ctx.free
        if free < gran:
            return CycleDecision.nothing()
        machine_size = ctx.machine.total
        commands: List[ECC] = []
        # Phase 1 — pref common pool: everyone reaches their preferred
        # size before anyone grows past it.
        for job in self._running_malleable(ctx):
            assert job.pref_procs is not None
            target = min(
                max(job.num, _floor_to(job.pref_procs, gran)),
                expand_ceiling(job, gran, machine_size),
            )
            grow = min(target - job.num, _floor_to(free, gran))
            if grow >= gran:
                commands.append(
                    ECC(
                        job_id=job.job_id,
                        issue_time=ctx.now,
                        kind=ECCKind.EXTEND_PROCS,
                        amount=grow,
                    )
                )
                free -= grow
                if free < gran:
                    return CycleDecision(commands=commands)
        if self.expand != "max":
            if commands:
                return CycleDecision(commands=commands)
            return CycleDecision.nothing()
        # Phase 2 — spend what is left pushing jobs toward their maxima.
        granted = {ecc.job_id: ecc.amount for ecc in commands}
        merged: List[ECC] = []
        for job in self._running_malleable(ctx):
            current = job.num + int(granted.get(job.job_id, 0))
            ceiling = expand_ceiling(job, gran, machine_size)
            grow = min(ceiling - current, _floor_to(free, gran))
            if grow >= gran:
                granted[job.job_id] = granted.get(job.job_id, 0) + grow
                free -= grow
            if granted.get(job.job_id):
                merged.append(
                    ECC(
                        job_id=job.job_id,
                        issue_time=ctx.now,
                        kind=ECCKind.EXTEND_PROCS,
                        amount=granted.pop(job.job_id),
                    )
                )
            if free < gran:
                break
        if merged:
            return CycleDecision(commands=merged)
        return CycleDecision.nothing()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r} inner={self.inner.name!r}>"


class MalleableFCFS(_MalleableBase):
    """FCFS plus shrink-to-start: running jobs donate down to their
    minima (average steal, all-or-nothing) whenever that lets the
    queue head start now.  No backfilling, no idle-capacity soaking —
    the cleanest demonstration of scheduler-initiated shrinking.
    """

    name = "Malleable-FCFS"

    def __init__(self, elastic: bool = True) -> None:
        super().__init__(FCFS(), expand="none", agreement=0.0, elastic=elastic)


class MalleableBackfill(_MalleableBase):
    """EASY backfill plus both malleability directions: shrink running
    jobs to start the head when backfilling cannot, and expand them
    toward preferred then maximum sizes (pref common pool) when the
    queue is empty and processors idle.
    """

    name = "Malleable-Backfill"

    def __init__(self, elastic: bool = True) -> None:
        super().__init__(
            EasyBackfill(), expand="max", agreement=0.0, elastic=elastic
        )


class MalleableAgreement(_MalleableBase):
    """:class:`MalleableBackfill` with an agreement gate on shrinking:
    the steal proceeds only when at least ``agreement`` (default half)
    of the running malleable jobs have donatable slack, and expansion
    stops at preferred sizes.  Models co-operative malleability where
    jobs are not squeezed unless the running population can spread the
    cost.
    """

    name = "Malleable-Agreement"

    def __init__(self, agreement: float = 0.5, elastic: bool = True) -> None:
        super().__init__(
            EasyBackfill(), expand="pref", agreement=agreement, elastic=elastic
        )


__all__ = [
    "MalleableAgreement",
    "MalleableBackfill",
    "MalleableFCFS",
    "expand_ceiling",
    "plan_average_steal",
    "shrink_floor",
]
