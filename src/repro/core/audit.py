"""Auditing decorator for scheduling policies.

Wraps any :class:`~repro.core.base.Scheduler` and re-checks, around
*every* cycle pass:

- the Notations-box structural invariants (``W^b`` FIFO with the
  Algorithm-3 promoted prefix, ``W^d`` start-sorted, ``A``
  residual-sorted, machine books consistent),
- the Algorithm-1 line-1 identity ``m = M − Σ a_i.num`` (with ``M``
  shrunk by offline psets under fault injection),
- decision sanity: only queued jobs are started, within free capacity;
  only due dedicated jobs are promoted.

Wrap a policy while developing it::

    from repro.core.audit import AuditingScheduler
    runner = SimulationRunner(workload, AuditingScheduler(MyPolicy()))

Violations raise :class:`AuditViolation` at the cycle where the
corruption happens — instead of surfacing as a confusing downstream
symptom.  The whole registry is run under this wrapper in
``tests/test_invariant_audit.py``.
"""

from __future__ import annotations

from repro.core.base import CycleDecision, Scheduler, SchedulerContext


class AuditViolation(AssertionError):
    """An invariant or decision-sanity check failed."""


class AuditingScheduler(Scheduler):
    """Transparent policy decorator with per-cycle invariant checks."""

    def __init__(self, inner: Scheduler) -> None:
        super().__init__(elastic=inner.elastic)
        self.name = f"audited({inner.name})"
        self.handles_dedicated = inner.handles_dedicated
        self.inner = inner
        self.passes = 0  # cycle passes audited (diagnostics)

    def memo_token(self) -> object:
        return self.inner.memo_token()

    # ------------------------------------------------------------------
    def _audit_state(self, ctx: SchedulerContext) -> None:
        try:
            ctx.batch_queue.check_invariants(allow_promoted_head=True)
            ctx.dedicated_queue.check_invariants()
            ctx.active.check_invariants(now=ctx.now)
            ctx.machine.check_invariants()
        except AssertionError as exc:
            raise AuditViolation(f"state invariant broken at t={ctx.now}: {exc}") from exc
        if ctx.free != ctx.machine.available - ctx.active.total_used:
            raise AuditViolation(
                f"m != M - offline - sum(a_i.num) at t={ctx.now}: "
                f"{ctx.free} vs {ctx.machine.available - ctx.active.total_used}"
            )

    def _audit_decision(self, ctx: SchedulerContext, decision: CycleDecision) -> None:
        queued_ids = {job.job_id for job in ctx.batch_queue}
        total = 0
        for job in decision.starts:
            if job.job_id not in queued_ids:
                raise AuditViolation(
                    f"{self.inner.name} started non-queued job {job.job_id} at t={ctx.now}"
                )
            total += job.num
        if total > ctx.free:
            raise AuditViolation(
                f"{self.inner.name} overcommitted at t={ctx.now}: "
                f"decision uses {total} of {ctx.free} free processors"
            )
        dedicated_ids = {job.job_id for job in ctx.dedicated_queue}
        for job in decision.promotions:
            if job.job_id not in dedicated_ids:
                raise AuditViolation(
                    f"promotion of non-dedicated-queued job {job.job_id}"
                )
            if job.requested_start is None or job.requested_start > ctx.now:
                raise AuditViolation(
                    f"premature promotion of job {job.job_id} "
                    f"(start {job.requested_start} > t={ctx.now})"
                )

    # ------------------------------------------------------------------
    def cycle(self, ctx: SchedulerContext) -> CycleDecision:
        self.passes += 1
        self._audit_state(ctx)
        decision = self.inner.cycle(ctx)
        self._audit_decision(ctx, decision)
        return decision


__all__ = ["AuditViolation", "AuditingScheduler"]
