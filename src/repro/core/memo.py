"""Hot-path memoization for the scheduling dynamic programs.

The runner re-enters the scheduler on every simulation event and loops
each cycle to fix-point, so ``basic_dp``/``reservation_dp`` dominate
wall time — while the knapsack *instances* they solve (candidate sizes
× capacity) repeat heavily across consecutive cycles.  Both DPs are
pure functions of a canonical instance key:

``basic_dp``
    ``(capacity, ((size, value), ...))`` — capacity and sizes in
    granularity units, value in processors.

``reservation_dp``
    ``(cap_now, cap_freeze, ((size, fsize, value), ...))`` — the
    two-dimensional instance after ``frenum`` folding, so the wall
    clock (``now``/``freeze_time``) never enters the key.

The cached result is the tuple of **selected candidate indices**, not
job objects: indices map back onto the live :class:`~repro.workload.job.Job`
candidates of the calling cycle, so a hit can never leak stale jobs
across runs.  Correctness is by construction — two calls with equal
keys describe the same mathematical knapsack and the DP is
deterministic.  The caches are module-level (no plumbing through
policy signatures) but the runner clears them at run start: telemetry
counters must be a pure function of the run, never of what else the
process simulated before (the determinism suite compares them across
serial, parallel, and repeated runs).

Every lookup reports through the :func:`repro.obs.telemetry.bump` hook
(``dp_cache_hits`` / ``dp_cache_misses``), so ``--telemetry`` and the
trace schema carry the hit rate unchanged.

Set ``REPRO_NO_MEMO=1`` to disable the whole memoization layer — the
DP result cache, the runner's schedule-cycle elision and the
incremental capacity profile — for debugging; the transparency suite
asserts byte-identical traces either way (docs/performance.md).

>>> cache = LRUCache(capacity=2)
>>> cache.put("a", (0,)); cache.put("b", (1,))
>>> cache.get("a")
(0,)
>>> cache.put("c", (2,))     # evicts "b", the least recently used
>>> cache.get("b") is None
True
>>> len(cache)
2
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Generic, Hashable, Optional, Tuple, TypeVar

#: Environment switch: any truthy value disables the memoization layer
#: (DP result cache, cycle elision, incremental capacity profile).
ENV_NO_MEMO = "REPRO_NO_MEMO"

#: Entries kept per DP cache.  Sized for the working set of one long
#: sweep (distinct instances per run are typically a few hundred — see
#: the dp_cache_* counters) while bounding memory: values are small
#: index tuples, so even full caches stay a few MiB.
DEFAULT_CACHE_SIZE = 8192

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


def memo_enabled() -> bool:
    """Whether the memoization layer is active (``REPRO_NO_MEMO`` unset).

    Checked per call-site entry (one environment lookup) so tests and
    debugging sessions can flip the switch between runs without
    re-importing anything.
    """
    return os.environ.get(ENV_NO_MEMO, "").strip().lower() not in (
        "1", "true", "yes", "on",
    )


class LRUCache(Generic[K, V]):
    """A small bounded mapping with least-recently-used eviction.

    Plain :class:`~collections.OrderedDict` machinery — ``move_to_end``
    on hit, ``popitem(last=False)`` past capacity — kept free of any
    telemetry so the DP caches can report hits/misses with their own
    counter names.
    """

    __slots__ = ("capacity", "_data", "hits", "misses")

    def __init__(self, capacity: int = DEFAULT_CACHE_SIZE) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._data: "OrderedDict[K, V]" = OrderedDict()
        #: Probe counters maintained by :func:`lookup`; the runner folds
        #: them into the ``dp_cache_hits``/``dp_cache_misses`` telemetry
        #: at the end of a run (cheaper than a registry bump per probe).
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: K) -> Optional[V]:
        """The cached value for ``key`` (refreshing it), or ``None``."""
        data = self._data
        value = data.get(key)
        if value is not None:
            data.move_to_end(key)
        return value

    def put(self, key: K, value: V) -> None:
        """Store ``key -> value``, evicting the LRU entry past capacity."""
        data = self._data
        data[key] = value
        data.move_to_end(key)
        if len(data) > self.capacity:
            data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the probe counters."""
        self._data.clear()
        self.hits = 0
        self.misses = 0


#: Key/value shapes of the two DP caches (documentation aliases).
BasicKey = Tuple[int, Tuple[Tuple[int, int], ...]]
ReservationKey = Tuple[int, int, Tuple[Tuple[int, int, int], ...]]
Selection = Tuple[int, ...]

#: The two dynamic programs' caches.  Module-level so instrumented
#: policies need no plumbing; reset by the runner at run start so a
#: run's hit/miss counters never depend on prior runs in the process.
BASIC_CACHE: LRUCache[BasicKey, Selection] = LRUCache()
RESERVATION_CACHE: LRUCache[ReservationKey, Selection] = LRUCache()


def lookup(cache: LRUCache[K, Selection], key: K) -> Optional[Selection]:
    """Cache probe counted on the cache itself.

    The counts surface as ``dp_cache_hits``/``dp_cache_misses``
    telemetry when the runner folds them in at the end of a run —
    probes happen on every scheduling pass, so they count on plain
    attributes instead of going through the registry hook each time.
    """
    selection = cache.get(key)
    if selection is not None:
        cache.hits += 1
    else:
        cache.misses += 1
    return selection


def clear_caches() -> None:
    """Empty both DP caches (test isolation for counter assertions)."""
    BASIC_CACHE.clear()
    RESERVATION_CACHE.clear()


__all__ = [
    "BASIC_CACHE",
    "DEFAULT_CACHE_SIZE",
    "ENV_NO_MEMO",
    "LRUCache",
    "RESERVATION_CACHE",
    "clear_caches",
    "lookup",
    "memo_enabled",
]
