"""Dedicated-queue baselines: EASY-D and LOS-D (§V, Table III).

The paper makes the baselines comparable with Hybrid-LOS by "appending
the EASY and LOS algorithms with the dedicated job queue": batch jobs
are scheduled around the rigid dedicated reservations, and due
dedicated jobs are promoted to the batch-queue head exactly as in
Algorithm 3.

``LOS-D`` falls out of the same unification as LOS: Hybrid-LOS with
``C_s = 0`` starts the batch head right away whenever it fits and
packs with the dedicated-aware ``Reservation_DP`` otherwise — which
*is* LOS extended with the dedicated queue.

``EASY-D`` augments EASY's backfill test with the dedicated freeze:
a job may start now only if it does not delay the batch head (shadow
test) *and* does not overrun the dedicated reservation (ends before
the dedicated freeze end time or fits its freeze capacity).  The
freeze is recomputed from live state every pass, so capacity consumed
by earlier backfills is accounted automatically.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import CycleDecision, Scheduler, SchedulerContext
from repro.core.dp import DEFAULT_LOOKAHEAD
from repro.core.freeze import FreezeSpec, batch_head_freeze, dedicated_freeze
from repro.core.hybrid_los import HybridLOS
from repro.workload.job import Job


class LOSDedicated(HybridLOS):
    """LOS-D: LOS appended with the dedicated job queue."""

    name = "LOS-D"

    def __init__(
        self,
        lookahead: Optional[int] = DEFAULT_LOOKAHEAD,
        elastic: bool = False,
    ) -> None:
        super().__init__(max_skip_count=0, lookahead=lookahead, elastic=elastic)


class EasyBackfillDedicated(Scheduler):
    """EASY-D: EASY backfilling around rigid dedicated reservations."""

    name = "EASY-D"
    handles_dedicated = True

    def cycle(self, ctx: SchedulerContext) -> CycleDecision:
        promotion = self.due_dedicated_promotion(ctx)
        if promotion is not None:
            return promotion

        queue = ctx.batch_queue.jobs()
        if not queue:
            return CycleDecision.nothing()
        m = ctx.free
        if m <= 0:
            return CycleDecision.nothing()

        ded_freeze = dedicated_freeze(ctx) if ctx.dedicated_queue else None
        head = queue[0]

        if head.num <= m:
            if self._respects_dedicated(ctx, head, ded_freeze):
                return CycleDecision(starts=[head])
            # The head fits but would overrun the dedicated
            # reservation: it is blocked by the reservation itself.
            # Backfill conservatively — only jobs that terminate before
            # the dedicated start can provably delay nothing.
            assert ded_freeze is not None
            for job in queue[1:]:
                if job.num <= m and ctx.now + job.estimate <= ded_freeze.fret:
                    return CycleDecision(starts=[job])
            return CycleDecision.nothing()

        if len(queue) == 1:
            return CycleDecision.nothing()

        # Head is capacity-blocked: classic EASY shadow for the head,
        # plus the dedicated constraint on every backfill candidate.
        shadow = batch_head_freeze(ctx, head)
        for job in queue[1:]:
            if job.num > m:
                continue
            ends_by_shadow = ctx.now + job.estimate <= shadow.fret
            fits_extra = job.num <= shadow.frec
            if not (ends_by_shadow or fits_extra):
                continue
            if self._respects_dedicated(ctx, job, ded_freeze):
                return CycleDecision(starts=[job])
        return CycleDecision.nothing()

    # ------------------------------------------------------------------
    @staticmethod
    def _respects_dedicated(
        ctx: SchedulerContext, job: Job, freeze: Optional[FreezeSpec]
    ) -> bool:
        """Whether starting ``job`` now overruns the dedicated freeze."""
        if freeze is None:
            return True
        return ctx.now + job.estimate <= freeze.fret or job.num <= freeze.frec


__all__ = ["EasyBackfillDedicated", "LOSDedicated"]
