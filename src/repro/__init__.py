"""repro — reproduction of "Scheduling Batch and Heterogeneous Jobs
with Runtime Elasticity in a Parallel Processing Environment"
(Kumar, Shae, Jamjoom — IPPS/IPDPS 2012).

The package implements the paper's schedulers (Delayed-LOS,
Hybrid-LOS and their elastic variants), the baselines they are
evaluated against (EASY backfill, LOS and their -D/-E/-DE
counterparts), and every substrate the evaluation needs: a
discrete-event simulator, a BlueGene/P-style machine model, the
SWF/CWF workload formats, the Lublin–Feitelson workload model, and an
experiment harness regenerating every figure and table of §V.

Quickstart::

    import numpy as np
    from repro import (
        CWFWorkloadGenerator, GeneratorConfig, make_scheduler, simulate,
    )

    workload = CWFWorkloadGenerator(GeneratorConfig(n_jobs=200)).generate(
        np.random.default_rng(42)
    )
    for name in ("EASY", "LOS", "Delayed-LOS"):
        metrics = simulate(workload, make_scheduler(name))
        print(name, metrics.utilization, metrics.mean_wait)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.cluster import Machine, UtilizationTracker
from repro.core import (
    ALGORITHMS,
    AdaptiveSelector,
    ConservativeBackfill,
    DelayedLOS,
    EasyBackfill,
    EasyBackfillDedicated,
    FCFS,
    HybridLOS,
    LOS,
    LOSDedicated,
    Scheduler,
    make_scheduler,
)
from repro.experiments import (
    ExperimentConfig,
    RunCache,
    RunSpec,
    SimulationRunner,
    calibrate_beta_arr,
    execute_runs,
    resolve_jobs,
    run_algorithms,
    simulate,
)
from repro.experiments.replicate import ReplicatedSweep, replicate_sweep
from repro.faults import FaultConfig, RetryPolicy
from repro.metrics import JobRecord, RunMetrics
from repro.metrics.breakdown import by_kind, by_outcome, by_size_class
from repro.metrics.export import records_to_csv, run_to_json, runs_to_csv, sweep_to_csv
from repro.metrics.timeline import occupancy_sparkline, render_timeline
from repro.obs import (
    ProgressEvent,
    ProgressReporter,
    Telemetry,
    TelemetrySnapshot,
    read_trace,
    write_trace,
)
from repro.sim import Simulator
from repro.workload import (
    CWFWorkloadGenerator,
    ECC,
    ECCKind,
    GeneratorConfig,
    Job,
    JobKind,
    LublinConfig,
    LublinModel,
    TwoStageSizeConfig,
    Workload,
    offered_load,
)
from repro.workload.stats import WorkloadStats, characterize
from repro.workload.transform import filter_jobs, head, merge, time_slice
from repro.workload.validate import validate_workload

__version__ = "1.9.0"

__all__ = [
    "ALGORITHMS",
    "AdaptiveSelector",
    "CWFWorkloadGenerator",
    "ConservativeBackfill",
    "DelayedLOS",
    "ECC",
    "ECCKind",
    "EasyBackfill",
    "EasyBackfillDedicated",
    "ExperimentConfig",
    "FCFS",
    "FaultConfig",
    "GeneratorConfig",
    "HybridLOS",
    "Job",
    "JobKind",
    "JobRecord",
    "LOS",
    "LOSDedicated",
    "LublinConfig",
    "LublinModel",
    "Machine",
    "ProgressEvent",
    "ProgressReporter",
    "ReplicatedSweep",
    "RetryPolicy",
    "RunCache",
    "RunMetrics",
    "RunSpec",
    "Scheduler",
    "SimulationRunner",
    "Simulator",
    "Telemetry",
    "TelemetrySnapshot",
    "TwoStageSizeConfig",
    "UtilizationTracker",
    "Workload",
    "WorkloadStats",
    "__version__",
    "by_kind",
    "by_outcome",
    "by_size_class",
    "calibrate_beta_arr",
    "characterize",
    "execute_runs",
    "filter_jobs",
    "head",
    "make_scheduler",
    "merge",
    "occupancy_sparkline",
    "offered_load",
    "read_trace",
    "records_to_csv",
    "render_timeline",
    "replicate_sweep",
    "resolve_jobs",
    "run_algorithms",
    "run_to_json",
    "runs_to_csv",
    "simulate",
    "sweep_to_csv",
    "time_slice",
    "validate_workload",
    "write_trace",
]
