"""Tables IV–VII: maximum % improvements over a load sweep.

The paper reports, for each metric, the *maximum* per-load-point
percentage improvement of the proposed algorithm over each baseline
("listing mean percentage improvements across varying loads will not
make sense", §V-A).  :func:`improvement_table` derives exactly that
from a :class:`~repro.experiments.sweep.SweepResult`.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.experiments.sweep import SweepResult
from repro.metrics.stats import max_improvement

#: metric attribute -> (paper row label, higher-is-better)
TABLE_METRICS: Mapping[str, tuple[str, bool]] = {
    "utilization": ("Utilization", True),
    "mean_wait": ("Job waiting time", False),
    "slowdown": ("Slowdown", False),
}


def improvement_table(
    sweep: SweepResult,
    ours: str,
    baselines: Sequence[str],
) -> Dict[str, Dict[str, float]]:
    """Max-% improvement of ``ours`` over each baseline, per metric.

    Returns:
        metric label -> {baseline -> max % improvement}, matching the
        layout of Tables IV–VII.
    """
    table: Dict[str, Dict[str, float]] = {}
    for attribute, (label, higher_is_better) in TABLE_METRICS.items():
        ours_series = sweep.metric_series(ours, attribute)
        row: Dict[str, float] = {}
        for baseline in baselines:
            base_series = sweep.metric_series(baseline, attribute)
            row[baseline] = round(
                max_improvement(ours_series, base_series, higher_is_better), 2
            )
        table[label] = row
    return table


#: Paper-reported values, used by EXPERIMENTS.md and the benches'
#: printed paper-vs-measured comparison (not asserted: absolute
#: numbers depend on the authors' exact workload draws).
PAPER_TABLE_IV = {
    "Utilization": {"LOS": 4.1, "EASY": 1.52},
    "Job waiting time": {"LOS": 31.88, "EASY": 21.65},
    "Slowdown": {"LOS": 30.3, "EASY": 20.41},
}
PAPER_TABLE_V = {
    "Utilization": {"LOS-D": 4.55, "EASY-D": 2.33},
    "Job waiting time": {"LOS-D": 25.31, "EASY-D": 18.24},
    "Slowdown": {"LOS-D": 24.29, "EASY-D": 17.43},
}
PAPER_TABLE_VI = {
    "Utilization": {"LOS-E": 4.93, "EASY-E": 1.78},
    "Job waiting time": {"LOS-E": 18.94, "EASY-E": 12.19},
    "Slowdown": {"LOS-E": 18.39, "EASY-E": 11.79},
}
PAPER_TABLE_VII = {
    "Utilization": {"LOS-DE": 1.88, "EASY-DE": 3.02},
    "Job waiting time": {"LOS-DE": 20.76, "EASY-DE": 10.18},
    "Slowdown": {"LOS-DE": 19.81, "EASY-DE": 14.6},
}


__all__ = [
    "PAPER_TABLE_IV",
    "PAPER_TABLE_V",
    "PAPER_TABLE_VI",
    "PAPER_TABLE_VII",
    "TABLE_METRICS",
    "improvement_table",
]
