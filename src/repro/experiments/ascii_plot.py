"""Tiny terminal line plots for the benchmark harness.

The benches print each figure's series as a table *and* a quick ASCII
plot so the shape (who wins, where crossovers fall) is visible in CI
logs without any plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_MARKERS = "ox+*#@%&"


def ascii_plot(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 64,
    height: int = 16,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render multiple series as an ASCII scatter/line chart.

    Args:
        x_values: Shared x coordinates.
        series: name -> y values (aligned with ``x_values``).
        width / height: Plot canvas size in characters.
        title: Optional heading.
        y_label: Optional y-axis caption.

    Returns:
        The plot as a multi-line string (legend included).
    """
    if not x_values or not series:
        return f"{title}\n(no data)" if title else "(no data)"
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points, expected {len(x_values)}"
            )

    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    x_min, x_max = min(x_values), max(x_values)
    y_span = (y_max - y_min) or 1.0
    x_span = (x_max - x_min) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} = {name}")
        for x, y in zip(x_values, ys):
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = int(round((y - y_min) / y_span * (height - 1)))
            canvas[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(f"  {y_label}")
    lines.append(f"  {y_max:>12.4g} ┤" + "".join(canvas[0]))
    for row in canvas[1:-1]:
        lines.append(" " * 15 + "│" + "".join(row))
    lines.append(f"  {y_min:>12.4g} ┤" + "".join(canvas[-1]))
    lines.append(" " * 15 + "└" + "─" * width)
    lines.append(" " * 16 + f"{x_min:<12.4g}" + " " * max(0, width - 24) + f"{x_max:>12.4g}")
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)


__all__ = ["ascii_plot"]
