"""Event-driven simulation of one (workload, scheduler) pair.

The runner owns the clock, machine, queues and event wiring; the
policy only decides.  Event semantics (see
:class:`repro.sim.events.EventPriority` for same-instant ordering):

- *arrival*: the job joins ``W^b`` (batch) or ``W^d`` (dedicated, plus
  a timer at its rigid requested start),
- *finish*: processors release, the job's record is frozen,
- *ECC*: the elastic control queue hands the command to the ECC
  processor (elastic policies only); a changed kill-by time
  reschedules the finish event — the core of runtime elasticity,
- *cycle*: the policy runs to fix-point — every pass's decision is
  applied (promotions, then starts) and the policy re-invoked until it
  makes none, with ``allow_scount_increment`` true only on the first
  pass so a skipped head counts once per scheduling cycle.

Every state transition is recorded in a :class:`~repro.sim.TraceLog`
when tracing is on; tests assert event-level invariants on it.
"""

from __future__ import annotations

from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional, Union

from repro.cluster.accounting import UtilizationTracker
from repro.cluster.machine import Machine
from repro.core.base import CycleDecision, Scheduler, SchedulerContext
from repro.core.elastic import ECCOutcome, ECCProcessor
from repro.core.memo import clear_caches, memo_enabled
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultConfig, RetryPolicy
from repro.metrics.queue_stats import QueueTracker
from repro.metrics.records import (
    CancellationRecord,
    FailureRecord,
    JobRecord,
    RunMetrics,
)
from repro.obs import telemetry as obs_telemetry
from repro.queues.active_list import ActiveList
from repro.queues.batch_queue import BatchQueue
from repro.queues.dedicated_queue import DedicatedQueue
from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import Event, EventPriority
from repro.sim.trace import TraceLog
from repro.workload.ecc import ECC, ECCKind
from repro.workload.generator import Workload
from repro.workload.job import Job, JobState

#: Hard cap on fix-point passes within one scheduling cycle; real
#: cycles converge in a handful of passes, so hitting this means a
#: policy is oscillating.
MAX_CYCLE_PASSES = 10_000


class SimulationRunner:
    """Simulates ``workload`` under ``scheduler`` on its machine.

    Args:
        workload: The input workload (jobs are copied; the workload
            object is reusable across runs and algorithms).
        scheduler: The policy to drive.
        trace: Record a full in-memory :class:`TraceLog`
            (tests/debugging).
        trace_out: Stream every trace record to this path as JSONL
            (schema ``repro.trace/1``; docs/observability.md).
            Independent of ``trace``: with ``trace_out`` alone,
            records go straight to disk and memory stays flat.
            Tracing never changes scheduling — metrics are identical
            with and without it.
        max_eccs_per_job: Optional per-job ECC budget (§III-C).
        allow_resource_eccs: Opt-in for the EP/RP prototype.
        faults: Optional fault model (docs/resilience.md).  Node
            faults switch the machine to placement tracking so psets
            can fail; job faults schedule per-attempt crashes.
        retry: Recovery policy for failed/evicted jobs; defaults to
            :class:`~repro.faults.model.RetryPolicy` (3 retries, no
            backoff, no checkpointing).  Only consulted when faults
            are injected.

    Raises:
        ValueError: when the workload contains dedicated jobs but the
            policy does not handle a dedicated queue, or when any job
            violates the machine's size/granularity constraints.
    """

    def __init__(
        self,
        workload: Workload,
        scheduler: Scheduler,
        *,
        trace: bool = False,
        trace_out: Optional[Union[str, Path]] = None,
        max_eccs_per_job: Optional[int] = None,
        allow_resource_eccs: bool = False,
        faults: Optional[FaultConfig] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.workload = workload
        self.scheduler = scheduler
        self.retry = retry if retry is not None else RetryPolicy()
        self.jobs: List[Job] = workload.fresh_jobs()
        self._jobs_by_id: Dict[int, Job] = {job.job_id: job for job in self.jobs}
        if len(self._jobs_by_id) != len(self.jobs):
            raise ValueError("duplicate job ids in workload")

        dedicated = [job for job in self.jobs if job.is_dedicated]
        if dedicated and not scheduler.handles_dedicated:
            raise ValueError(
                f"workload has {len(dedicated)} dedicated jobs but "
                f"{scheduler.name} handles batch jobs only (use a -D variant)"
            )

        for ecc in workload.eccs:
            target = self._jobs_by_id.get(ecc.job_id)
            if target is None:
                raise ValueError(f"ECC references unknown job {ecc.job_id}")
            if ecc.issue_time < target.submit:
                # ECCs modify "a previously submitted job" (§III-C):
                # a command cannot precede its job's submission.
                raise ValueError(
                    f"ECC for job {ecc.job_id} issued at t={ecc.issue_time} "
                    f"before the job's submission at t={target.submit}"
                )

        start = min((job.submit for job in self.jobs), default=0.0)
        self.tracker = UtilizationTracker(start_time=start)
        self.queue_tracker = QueueTracker(start_time=start)
        self.machine = Machine(
            total=workload.machine_size,
            granularity=workload.granularity,
            tracker=self.tracker,
            # Pset failures need concrete placement; job-only faults
            # (and the fault-free path) skip the bookkeeping.
            track_placement=faults is not None and faults.node_faults_enabled,
        )
        for job in self.jobs:
            self.machine.validate_request(job.num)

        self.sim = Simulator(start_time=start)
        self._trace_out = Path(trace_out) if trace_out is not None else None
        self.trace = TraceLog(
            enabled=trace or self._trace_out is not None, store=trace
        )
        self.telemetry = obs_telemetry.Telemetry()
        self.batch_queue = BatchQueue()
        self.dedicated_queue = DedicatedQueue()
        self.active = ActiveList()
        self.records: List[JobRecord] = []
        self.cancelled_records: List[CancellationRecord] = []
        self.ecc_processor = ECCProcessor(
            max_eccs_per_job=max_eccs_per_job,
            allow_resource_eccs=allow_resource_eccs,
            machine_granularity=self.machine.granularity,
            machine_size=self.machine.total,
        )
        self._dropped_eccs = 0
        # One context object serves every cycle; _run_cycle re-stamps
        # the clock and resets the free-capacity cache per cycle/pass.
        self._ctx = SchedulerContext(
            now=start,
            machine=self.machine,
            batch_queue=self.batch_queue,
            dedicated_queue=self.dedicated_queue,
            active=self.active,
        )
        self._cancelled_while_running: set[int] = set()
        self._finish_events: Dict[int, Event] = {}
        self._pending_cycle_time: Optional[float] = None
        # Cycle elision (docs/performance.md): fingerprint of the one
        # cycle proven side-effect free, plus a counter covering job
        # mutations the queue/active versions can't see (applied ECCs).
        self._elidable_token: Optional[tuple] = None
        self._jobs_version = 0
        # Snapshot of repro.core.memo.memo_enabled(); refreshed at the
        # top of run() so the env var is read once per run, not per
        # cycle.  Mirrored onto the context for policy-side hot paths
        # (dedicated_freeze).
        self._memo_on = memo_enabled()
        self._ctx.memo = self._memo_on
        self.failed_records: List[FailureRecord] = []
        self._lost_work = 0.0
        self._lost_by_job: Dict[int, float] = {}
        self._requeue_count = 0
        self.faults: Optional[FaultInjector] = (
            FaultInjector(self, faults) if faults is not None and faults.enabled else None
        )
        self._wire_events()
        if self.faults is not None:
            self.faults.install()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _wire_events(self) -> None:
        for job in self.jobs:
            self.sim.schedule_at(
                job.submit,
                lambda j=job: self._on_arrival(j),
                priority=EventPriority.ARRIVAL,
                name=f"arrive#{job.job_id}",
            )
        for ecc in self.workload.eccs:
            self.sim.schedule_at(
                ecc.issue_time,
                lambda e=ecc: self._on_ecc(e),
                priority=EventPriority.ECC,
                name=f"ecc#{ecc.job_id}",
            )
        for job in self.jobs:
            if job.cancel_at is not None:
                # User cancellations are commands like ECCs and share
                # their same-instant slot (after finishes, before
                # arrivals of the next batch of work).
                self.sim.schedule_at(
                    job.cancel_at,
                    lambda j=job: self._on_cancel(j),
                    priority=EventPriority.ECC,
                    name=f"cancel#{job.job_id}",
                )

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _sample_queue_depth(self, now: float) -> None:
        """Telemetry: waiting-job count after any queue transition."""
        self.telemetry.sample(
            "queue_depth", now, len(self.batch_queue) + len(self.dedicated_queue)
        )

    def _on_arrival(self, job: Job) -> None:
        now = self.sim.now
        if job.is_dedicated:
            self.trace.record(
                now, "arrive", job=job.job_id, num=job.num,
                job_kind=job.kind.value, requested_start=job.requested_start,
            )
        else:
            self.trace.record(
                now, "arrive", job=job.job_id, num=job.num, job_kind=job.kind.value
            )
        self.queue_tracker.on_enqueue(now, job.num * job.estimate)
        if job.is_dedicated:
            self.dedicated_queue.push(job)
            assert job.requested_start is not None
            if job.requested_start > now:
                self.sim.schedule_at(
                    job.requested_start,
                    self._request_cycle_now,
                    priority=EventPriority.TIMER,
                    name=f"ded-start#{job.job_id}",
                )
        else:
            self.batch_queue.push(job)
        self._sample_queue_depth(now)
        self._request_cycle()

    def _on_finish(self, job: Job) -> None:
        now = self.sim.now
        if self.faults is not None:
            self.faults.cancel_job_failure(job)
        self.active.remove(job)
        self.machine.release(job.job_id, time=now)
        job.finish_time = now
        job.state = JobState.FINISHED
        self._finish_events.pop(job.job_id, None)
        record = JobRecord.from_job(job)
        if job.job_id in self._cancelled_while_running:
            import dataclasses

            record = dataclasses.replace(record, cancelled=True)
        self.records.append(record)
        self.trace.record(now, "finish", job=job.job_id, num=job.num)
        self._request_cycle()

    def _on_cancel(self, job: Job) -> None:
        """SWF status-5 semantics: withdraw a queued job; terminate a
        running one at the cancellation instant."""
        now = self.sim.now
        if job.state is JobState.QUEUED:
            if job.is_dedicated and any(
                j.job_id == job.job_id for j in self.dedicated_queue
            ):
                self.dedicated_queue.remove(job)
            else:
                self.batch_queue.remove(job)
            job.state = JobState.CANCELLED
            self.queue_tracker.on_dequeue(now, job.num * job.estimate)
            self.cancelled_records.append(
                CancellationRecord(
                    job_id=job.job_id,
                    kind=job.kind,
                    num=job.num,
                    submit=job.submit,
                    cancelled_at=now,
                )
            )
            self.trace.record(now, "cancel", job=job.job_id, num=job.num, was="queued")
            self._sample_queue_depth(now)
            self._request_cycle()
        elif job.state is JobState.RUNNING:
            self.trace.record(now, "cancel", job=job.job_id, num=job.num, was="running")
            job.killed = True
            self._cancelled_while_running.add(job.job_id)
            self._reschedule_finish(job, now)
        # PENDING cannot happen (cancel_at >= submit is validated) and
        # FINISHED cancellations are no-ops.

    def _on_ecc(self, ecc: ECC) -> None:
        now = self.sim.now
        self.telemetry.count("ecc_commands")
        if not self.scheduler.elastic:
            # Non-elastic policies have no ECC processor appended; the
            # command is silently dropped (recorded for diagnostics).
            self._dropped_eccs += 1
            self.trace.record(now, "ecc-dropped", job=ecc.job_id, ecc_kind=ecc.kind.value)
            return
        job = self._jobs_by_id.get(ecc.job_id)
        if job is None:
            raise SimulationError(f"ECC references unknown job {ecc.job_id}")
        estimate_before = job.estimate
        result = self.ecc_processor.apply(ecc, job, now)
        if result.outcome.applied and job.state is not JobState.RUNNING and job.state is not JobState.FINISHED:
            # Queued/pending work changed: keep the backlog integral exact.
            self.queue_tracker.on_work_changed(
                now, job.num * (job.estimate - estimate_before)
            )
        self.trace.record(
            now,
            "ecc",
            job=ecc.job_id,
            ecc_kind=ecc.kind.value,
            amount=ecc.amount,
            outcome=result.outcome.value,
            # Post-command size: lets trace analytics map EP/RP
            # commands to allocation deltas (repro trace --check).
            num=job.num,
        )
        if result.outcome is ECCOutcome.APPLIED_RUNNING:
            assert result.new_kill_by is not None
            self._reschedule_finish(job, result.new_kill_by)
        elif result.outcome is ECCOutcome.TERMINATED_JOB:
            self._reschedule_finish(job, now)
        if result.outcome.applied:
            self._jobs_version += 1
            if job.state is JobState.RUNNING:
                self.active.resort()
            self._request_cycle()

    def _reschedule_finish(self, job: Job, when: float) -> None:
        old = self._finish_events.pop(job.job_id, None)
        if old is not None:
            old.cancel()
        self._finish_events[job.job_id] = self.sim.schedule_at(
            when,
            lambda j=job: self._on_finish(j),
            priority=EventPriority.FINISH,
            name=f"finish#{job.job_id}",
        )

    # ------------------------------------------------------------------
    # Failure recovery (docs/resilience.md)
    # ------------------------------------------------------------------
    def _fail_running_job(self, job: Job, *, release: bool, reason: str) -> None:
        """Terminate a running job's attempt; requeue or fail it.

        Args:
            job: The victim (must be RUNNING).
            release: Whether the machine allocation still needs
                releasing (pset eviction already released it).
            reason: ``"crash"`` or ``"evicted"`` (trace/records).

        The attempt's partial execution is charged to ``lost_work``,
        minus any checkpoint credit: with ``retry.checkpoint`` under an
        elastic policy the elapsed work is preserved as a synthetic RT
        command through the ECC processor, shrinking the restart's
        runtime (and honouring the per-job ECC budget).  The job then
        either re-enters the batch queue after the policy's backoff —
        at the tail, with a fresh effective arrival — or, once the
        retry budget is exhausted, fails permanently into a
        :class:`FailureRecord`.
        """
        now = self.sim.now
        assert job.state is JobState.RUNNING and job.start_time is not None, job
        pending = self._finish_events.pop(job.job_id, None)
        if pending is not None:
            pending.cancel()
        if self.faults is not None:
            self.faults.cancel_job_failure(job)
        self.active.remove(job)
        if release:
            self.machine.release(job.job_id, time=now)
        elapsed = now - job.start_time
        job.requeues += 1
        attempt = job.requeues
        job.state = JobState.PENDING
        job.start_time = None
        job.killed = False
        preserved = 0.0
        if self.retry.checkpoint and self.scheduler.elastic and elapsed > 0:
            estimate_before = job.estimate
            result = self.ecc_processor.apply(
                ECC(
                    job_id=job.job_id,
                    issue_time=now,
                    kind=ECCKind.REDUCE_TIME,
                    amount=elapsed,
                ),
                job,
                now,
            )
            if result.outcome.applied:
                preserved = estimate_before - job.estimate
        lost = job.num * max(0.0, elapsed - preserved)
        self._lost_work += lost
        self._lost_by_job[job.job_id] = self._lost_by_job.get(job.job_id, 0.0) + lost
        self.trace.record(
            now, "job-fail", job=job.job_id, num=job.num,
            reason=reason, attempt=attempt, lost=lost,
        )
        permanent = attempt > self.retry.max_retries
        if permanent:
            job.state = JobState.FAILED
            job.finish_time = now
            self.failed_records.append(
                FailureRecord(
                    job_id=job.job_id,
                    kind=job.kind,
                    num=job.num,
                    submit=job.submit,
                    failed_at=now,
                    attempts=attempt,
                    lost_work=self._lost_by_job[job.job_id],
                    reason=reason,
                )
            )
            self.trace.record(now, "job-failed-permanently", job=job.job_id, attempts=attempt)
        else:
            self.sim.schedule_in(
                self.retry.delay(attempt),
                lambda j=job: self._on_requeue(j),
                priority=EventPriority.ARRIVAL,
                name=f"requeue#{job.job_id}",
            )
        self.scheduler.on_job_failure(job, now, permanent)
        self._request_cycle()

    def _on_requeue(self, job: Job) -> None:
        """Backoff expired: the failed job rejoins the batch queue."""
        now = self.sim.now
        self.batch_queue.push_requeue(job, now)
        self.queue_tracker.on_enqueue(now, job.num * job.estimate)
        self._requeue_count += 1
        self.trace.record(now, "requeue", job=job.job_id, attempt=job.requeues)
        self._sample_queue_depth(now)
        self._request_cycle()

    # ------------------------------------------------------------------
    # Scheduling cycle
    # ------------------------------------------------------------------
    def _request_cycle_now(self) -> None:
        """Timer handler: a rigid dedicated start time was reached."""
        self._run_cycle()

    def _request_cycle(self) -> None:
        """Schedule one cycle at ``now`` (deduplicated per instant)."""
        now = self.sim.now
        if self._pending_cycle_time == now:
            return
        self._pending_cycle_time = now
        self.sim.schedule_at(
            now,
            self._run_cycle,
            priority=EventPriority.SCHEDULE,
            name="cycle",
        )

    def _elision_token(self) -> tuple:
        """O(1) fingerprint of the decision-relevant state at ``now``.

        Every input a policy can read is covered: the clock, queue and
        active-list mutation versions (membership, order, kill-by
        times), the job-mutation counter (applied ECCs), the machine's
        free/available capacity (fault and repair events move it), the
        batch head's skip count (the one field policies themselves
        mutate), and the policy's own :meth:`~repro.core.base.Scheduler
        .memo_token`.
        """
        head = self.batch_queue.head
        return (
            self.sim.now,
            self.batch_queue.version,
            self.dedicated_queue.version,
            self.active.version,
            self._jobs_version,
            self.machine.free,
            self.machine.available,
            None if head is None else (head.job_id, head.scount),
            self.scheduler.memo_token(),
        )

    def _run_cycle(self) -> None:
        now = self.sim.now
        if self._pending_cycle_time == now:
            self._pending_cycle_time = None
        telemetry = self.telemetry
        token: Optional[tuple] = None
        if self._memo_on:
            token = self._elision_token()
            if token == self._elidable_token:
                # This exact state already produced an empty, mutation-
                # free first pass at this instant; re-running the policy
                # would be the identity.
                telemetry.count("cycles_elided")
                return
        telemetry.count("schedule_cycles")
        started = perf_counter()
        ctx = self._ctx
        ctx.now = now
        ctx.invalidate_free()
        pass_index = 0
        try:
            for pass_index in range(MAX_CYCLE_PASSES):
                ctx.allow_scount_increment = pass_index == 0
                decision = self.scheduler.cycle(ctx)
                if decision.is_empty():
                    if pass_index == 0 and token is not None:
                        # A policy touches nothing but the batch head's
                        # scount and its own internal state during an
                        # empty pass (queues, machine and clock are
                        # runner-owned), so only those two fingerprint
                        # components need re-checking.
                        head = self.batch_queue.head
                        if token[7] == (
                            None if head is None else (head.job_id, head.scount)
                        ) and token[8] == self.scheduler.memo_token():
                            # Empty on the *first* pass (so scount
                            # rules matched a fresh cycle) and nothing
                            # mutated: a repeat at this instant is
                            # safe to skip.
                            self._elidable_token = token
                    return
                self._apply(decision)
                ctx.invalidate_free()
        finally:
            telemetry.count("schedule_passes", pass_index + 1)
            telemetry.add_time("schedule_wall_s", perf_counter() - started)
        raise SimulationError(
            f"scheduler {self.scheduler.name} did not reach a fix-point "
            f"within {MAX_CYCLE_PASSES} passes at t={now}"
        )

    def _apply(self, decision: CycleDecision) -> None:
        now = self.sim.now
        for job in decision.promotions:
            # Algorithm 3: the due dedicated head becomes the head of
            # the batch queue (scount was set by the policy).
            self.dedicated_queue.remove(job)
            self.batch_queue.push_head(job)
            self.trace.record(now, "promote", job=job.job_id, scount=job.scount)
        for job in decision.starts:
            self.batch_queue.remove(job)
            self.queue_tracker.on_dequeue(now, job.num * job.estimate)
            self.machine.allocate(job.job_id, job.num, time=now)
            job.start_time = now
            job.killed = job.actual is not None and job.actual > job.estimate
            self.active.add(job)
            self._reschedule_finish(job, now + job.effective_runtime())
            if self.faults is not None:
                self.faults.on_job_start(job)
            self.trace.record(now, "start", job=job.job_id, num=job.num)
        if decision.starts:
            self._sample_queue_depth(now)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> RunMetrics:
        """Run to completion and return the aggregate metrics.

        Raises:
            SimulationError: when events drain with jobs still waiting
                (a policy starved them — always a bug).
        """
        writer = None
        if self._trace_out is not None:
            from repro.obs.trace_io import TraceWriter

            writer = TraceWriter(self._trace_out, meta=self._trace_meta())
            self.trace.sink = writer.write
        # Each run starts with cold DP caches so the dp_cache_* /
        # dp_invocations counters are a pure function of the run —
        # identical serial, parallel, or repeated in one process.
        clear_caches()
        self._memo_on = memo_enabled()
        self._ctx.memo = self._memo_on
        try:
            # The active registry lets instrumented library code
            # (repro.core.dp, repro.core.easy) report without plumbing
            # a telemetry handle through every policy signature.
            with obs_telemetry.activated(self.telemetry):
                with self.telemetry.timeit("run_wall_s"):
                    self.sim.run(until=until)
        finally:
            if writer is not None:
                self.trace.sink = None
                writer.close()
        unfinished = [
            job
            for job in self.jobs
            if job.state
            not in (JobState.FINISHED, JobState.CANCELLED, JobState.FAILED)
        ]
        if unfinished and until is None:
            ids = [job.job_id for job in unfinished[:10]]
            raise SimulationError(
                f"{self.scheduler.name} left {len(unfinished)} jobs unfinished "
                f"(first ids: {ids}); starvation or wiring bug"
            )
        return self._metrics()

    def _trace_meta(self) -> Dict[str, object]:
        """Header metadata for a streamed trace file."""
        from repro import __version__

        return {
            "algorithm": self.scheduler.name,
            "machine_size": self.machine.total,
            "granularity": self.machine.granularity,
            "n_jobs": len(self.jobs),
            "n_eccs": len(self.workload.eccs),
            "faulty": self.faults is not None,
            "repro_version": __version__,
        }

    def _metrics(self) -> RunMetrics:
        last_finish = max((r.finish for r in self.records), default=self.tracker.start_time)
        ecc_stats = {
            outcome.value: count
            for outcome, count in self.ecc_processor.stats.items()
            if count
        }
        if self._dropped_eccs:
            ecc_stats["dropped-not-elastic"] = self._dropped_eccs
        return RunMetrics(
            algorithm=self.scheduler.name,
            machine_size=self.machine.total,
            records=list(self.records),
            utilization=self.tracker.mean_utilization(self.machine.total, until=last_finish),
            makespan=last_finish - self.tracker.start_time,
            offered_load=self.workload.offered_load(),
            ecc_stats=ecc_stats,
            events_processed=self.sim.processed_events,
            queue=self.queue_tracker.summary(until=last_finish),
            cancelled_records=list(self.cancelled_records),
            failed_records=list(self.failed_records),
            lost_work=self._lost_work,
            requeue_count=self._requeue_count,
            degraded_time=self.machine.degraded_time(until=last_finish),
            node_failures=self.faults.node_failures if self.faults else 0,
            telemetry=self.telemetry.snapshot(),
        )


def simulate(
    workload: Workload,
    scheduler: Scheduler,
    *,
    trace: bool = False,
    trace_out: Optional[Union[str, Path]] = None,
    max_eccs_per_job: Optional[int] = None,
    faults: Optional[FaultConfig] = None,
    retry: Optional[RetryPolicy] = None,
) -> RunMetrics:
    """One-shot convenience wrapper around :class:`SimulationRunner`."""
    return SimulationRunner(
        workload,
        scheduler,
        trace=trace,
        trace_out=trace_out,
        max_eccs_per_job=max_eccs_per_job,
        faults=faults,
        retry=retry,
    ).run()


__all__ = ["MAX_CYCLE_PASSES", "SimulationRunner", "simulate"]
