"""Event-driven simulation of one (workload, scheduler) pair.

The runner owns the clock, machine, queues and event wiring; the
policy only decides.  Event semantics (see
:class:`repro.sim.events.EventPriority` for same-instant ordering):

- *arrival*: the job joins ``W^b`` (batch) or ``W^d`` (dedicated, plus
  a timer at its rigid requested start),
- *finish*: processors release, the job's record is frozen,
- *ECC*: the elastic control queue hands the command to the ECC
  processor (elastic policies only); a changed kill-by time
  reschedules the finish event — the core of runtime elasticity,
- *cycle*: the policy runs to fix-point — every pass's decision is
  applied (malleability commands, then promotions, then starts) and
  the policy re-invoked until it makes none, with
  ``allow_scount_increment`` true only on the first pass so a skipped
  head counts once per scheduling cycle.

Every state transition is recorded in a :class:`~repro.sim.TraceLog`
when tracing is on; tests assert event-level invariants on it.
"""

from __future__ import annotations

import dataclasses
from contextlib import ExitStack
from functools import partial
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional, Union

from repro.cluster.accounting import UtilizationTracker
from repro.cluster.machine import Machine
from repro.core.base import (
    REASON_FAULT_BACKOFF,
    CycleDecision,
    Scheduler,
    SchedulerContext,
)
from repro.core.elastic import ECCOutcome, ECCProcessor
from repro.core.memo import (
    BASIC_CACHE,
    RESERVATION_CACHE,
    clear_caches,
    memo_enabled,
)
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultConfig, RetryPolicy
from repro.metrics.online import OnlineAggregator
from repro.metrics.queue_stats import QueueTracker
from repro.metrics.records import (
    CancellationRecord,
    FailureRecord,
    JobRecord,
    RunMetrics,
)
from repro.obs import spans as obs_spans
from repro.obs import telemetry as obs_telemetry
from repro.queues.active_list import ActiveList
from repro.queues.batch_queue import BatchQueue
from repro.queues.dedicated_queue import DedicatedQueue
from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import Event, EventPriority
from repro.sim.trace import TraceLog
from repro.workload.ecc import ECC, ECCKind
from repro.workload.generator import Workload
from repro.workload.job import Job, JobState
from repro.workload.streaming import JobStream, StreamItem

#: Hard cap on fix-point passes within one scheduling cycle; real
#: cycles converge in a handful of passes, so hitting this means a
#: policy is oscillating.
MAX_CYCLE_PASSES = 10_000


class SimulationRunner:
    """Simulates ``workload`` under ``scheduler`` on its machine.

    Args:
        workload: The input workload.  A :class:`Workload` is eager
            (jobs are copied; the object is reusable across runs and
            algorithms); a :class:`~repro.workload.streaming.JobStream`
            is consumed lazily as virtual time advances, holding only
            ``stream_window`` upcoming items plus the live jobs in
            memory (docs/scaling.md) — single-use, so build a fresh
            stream per run.
        online: Maintain an O(1)-memory
            :class:`~repro.metrics.online.OnlineAggregator` over
            completions and attach its summary as ``metrics.online``.
            Means are bitwise-equal to the record-based ones; the p95
            is a P² approximation.
        retain_records: Keep the per-job :class:`JobRecord` list
            (default).  ``False`` (requires ``online=True``) drops it
            so metrics memory stays flat at archive scale.
        stream_window: Upcoming stream items kept scheduled ahead of
            the clock (streaming mode only).  Same-instant arrival
            ordering caveat: streamed arrivals are enqueued as the
            window slides, so an arrival sharing its exact instant and
            priority with a dynamically scheduled event (a fault
            requeue) may fire after it where the eager runner — which
            pre-schedules every arrival first — fired it before.
            Metrics under faults can therefore differ in such ties;
            fault-free runs are unaffected.
        scheduler: The policy to drive.
        trace: Record a full in-memory :class:`TraceLog`
            (tests/debugging).
        trace_out: Stream every trace record to this path as JSONL
            (schema ``repro.trace/1``; docs/observability.md).
            Independent of ``trace``: with ``trace_out`` alone,
            records go straight to disk and memory stays flat.
            Tracing never changes scheduling — metrics are identical
            with and without it.
        spans: Record hierarchical phase spans
            (:mod:`repro.obs.spans`) for this run; per-phase
            self/cumulative wall time lands in the telemetry snapshot
            (``span_*`` counters/timers).  Off by default — the
            disabled path costs nothing and traces are byte-identical
            either way (CI-enforced).
        spans_out: Also write the spans as a Chrome trace-event JSON
            file (open in Perfetto or chrome://tracing).  Implies
            ``spans=True``.
        decisions: Record decision provenance: whenever the policy
            passes over a queued job it reports a reason code
            (:data:`repro.core.base.DECISION_REASONS`), deduplicated
            per job and emitted as ``decision`` records in the trace
            stream (rendered by ``repro explain --job N``).  Off by
            default, keeping the trace byte-identical to prior
            versions; enabling it only adds ``decision`` records.
        max_eccs_per_job: Optional per-job ECC budget (§III-C).
        allow_resource_eccs: Opt-in for the EP/RP prototype.
        faults: Optional fault model (docs/resilience.md).  Node
            faults switch the machine to placement tracking so psets
            can fail; job faults schedule per-attempt crashes.
        retry: Recovery policy for failed/evicted jobs; defaults to
            :class:`~repro.faults.model.RetryPolicy` (3 retries, no
            backoff, no checkpointing).  Only consulted when faults
            are injected.

    Raises:
        ValueError: when the workload contains dedicated jobs but the
            policy does not handle a dedicated queue, or when any job
            violates the machine's size/granularity constraints.
    """

    def __init__(
        self,
        workload: Union[Workload, JobStream],
        scheduler: Scheduler,
        *,
        trace: bool = False,
        trace_out: Optional[Union[str, Path]] = None,
        spans: bool = False,
        spans_out: Optional[Union[str, Path]] = None,
        decisions: bool = False,
        max_eccs_per_job: Optional[int] = None,
        allow_resource_eccs: bool = False,
        faults: Optional[FaultConfig] = None,
        retry: Optional[RetryPolicy] = None,
        online: bool = False,
        retain_records: bool = True,
        stream_window: int = 64,
    ) -> None:
        self.workload = workload
        self.scheduler = scheduler
        self.retry = retry if retry is not None else RetryPolicy()
        if not retain_records and not online:
            raise ValueError(
                "retain_records=False discards the per-job records; enable "
                "online=True so the run still produces statistics"
            )
        self._retain_records = retain_records
        self._online = OnlineAggregator() if online else None
        self._streaming = isinstance(workload, JobStream)
        # Streaming bookkeeping (all zero/idle in eager mode): the
        # admitted/retired counters replace scans over ``self.jobs``
        # (which streaming keeps empty), and the span/work accumulators
        # reproduce Workload.offered_load() from pristine pulls.
        self._jobs_admitted = 0
        self._jobs_retired = 0
        self._stream_inflight = 0
        self._stream_exhausted = True
        # Items pulled from the stream iterator so far.  A checkpoint
        # persists this count; resume rebuilds the (unpicklable)
        # iterator from the stream's spec and fast-forwards exactly
        # this many items (repro.durable.checkpoint).
        self._stream_pulled = 0
        self._stream_first: Optional[StreamItem] = None
        self._span_start: Optional[float] = None
        self._span_end = 0.0
        self._work_sum = 0.0
        if self._streaming:
            if stream_window < 1:
                raise ValueError(
                    f"stream_window must be positive, got {stream_window}"
                )
            self.jobs: List[Job] = []
            self._jobs_by_id: Dict[int, Job] = {}
            self._stream_iter = iter(workload)
            self._stream_window = stream_window
            # The stream contract says submissions lead their commands,
            # so a peek at the first item yields the simulation start
            # time without materializing anything else.
            first = next(self._stream_iter, None)
            if first is not None:
                self._stream_pulled += 1
            if first is None:
                raise ValueError(
                    "job stream yielded no items — streams are single-use; "
                    "build a fresh JobStream for every run"
                )
            if isinstance(first, ECC):
                raise ValueError(
                    f"job stream starts with an ECC for job {first.job_id}; "
                    "submissions must precede their commands"
                )
            self._stream_first = first
            self._stream_exhausted = False
            start = first.submit
        else:
            self.jobs = workload.fresh_jobs()
            self._jobs_by_id = {job.job_id: job for job in self.jobs}
            if len(self._jobs_by_id) != len(self.jobs):
                raise ValueError("duplicate job ids in workload")

            dedicated = [job for job in self.jobs if job.is_dedicated]
            if dedicated and not scheduler.handles_dedicated:
                raise ValueError(
                    f"workload has {len(dedicated)} dedicated jobs but "
                    f"{scheduler.name} handles batch jobs only (use a -D variant)"
                )

            for ecc in workload.eccs:
                target = self._jobs_by_id.get(ecc.job_id)
                if target is None:
                    raise ValueError(f"ECC references unknown job {ecc.job_id}")
                if ecc.issue_time < target.submit:
                    # ECCs modify "a previously submitted job" (§III-C):
                    # a command cannot precede its job's submission.
                    raise ValueError(
                        f"ECC for job {ecc.job_id} issued at t={ecc.issue_time} "
                        f"before the job's submission at t={target.submit}"
                    )

            start = min((job.submit for job in self.jobs), default=0.0)
        #: Latest completion instant, maintained incrementally by
        #: ``_on_finish`` (the eager path used to re-scan the records).
        self._last_finish = start
        self.tracker = UtilizationTracker(start_time=start)
        self.queue_tracker = QueueTracker(start_time=start)
        self.machine = Machine(
            total=workload.machine_size,
            granularity=workload.granularity,
            tracker=self.tracker,
            # Pset failures need concrete placement; job-only faults
            # (and the fault-free path) skip the bookkeeping.
            track_placement=faults is not None and faults.node_faults_enabled,
        )
        for job in self.jobs:
            self.machine.validate_request(job.num)

        self.sim = Simulator(start_time=start)
        self._trace_out = Path(trace_out) if trace_out is not None else None
        # The live TraceWriter while run() executes.  Normally created
        # (and closed) by run() itself; checkpoint resume pre-attaches
        # a journal-resumed writer here so the continued run appends to
        # the interrupted file instead of truncating it.
        self._trace_writer = None
        self.trace = TraceLog(
            enabled=trace or self._trace_out is not None, store=trace
        )
        # Cached so hot handlers can skip building the kwargs payload
        # entirely on untraced runs (the common case in sweeps).
        self._trace_on = self.trace.enabled
        self._spans_out = Path(spans_out) if spans_out is not None else None
        self._spans_on = spans or self._spans_out is not None
        # Live SpanRecorder while run() executes with spans on (None
        # otherwise); hot paths read this attribute instead of the
        # module hook.  run() creates a fresh recorder per call so a
        # checkpoint-resumed process never mixes perf_counter origins.
        self._span_recorder: Optional[obs_spans.SpanRecorder] = None
        self._decisions = decisions
        # Decision-provenance dedup: job_id -> last reported reason.
        # Policies re-report on every pass while a stall persists, so
        # only reason *changes* become trace records; the entry clears
        # when the job starts or requeues (a new wait episode).
        self._last_pass_reason: Dict[int, str] = {}
        self.telemetry = obs_telemetry.Telemetry()
        self._depth_series = self.telemetry.series_handle("queue_depth")
        # Cycle bookkeeping accumulated in plain attributes and folded
        # into the telemetry registry at snapshot time: the counters'
        # final values are identical, but the per-cycle dict updates
        # disappear from the inner loop.
        self._n_cycles = 0
        self._n_cycles_elided = 0
        self._n_passes = 0
        self._sched_wall = 0.0
        self.batch_queue = BatchQueue()
        self.dedicated_queue = DedicatedQueue()
        self.active = ActiveList()
        self.records: List[JobRecord] = []
        self.cancelled_records: List[CancellationRecord] = []
        self.ecc_processor = ECCProcessor(
            max_eccs_per_job=max_eccs_per_job,
            allow_resource_eccs=allow_resource_eccs,
            machine_granularity=self.machine.granularity,
            machine_size=self.machine.total,
            # Running resizes exist only under malleable policies; every
            # other scheduler keeps the paper's rigid allocations
            # bit-for-bit (docs/malleability.md).
            allow_running_resize=scheduler.malleable,
        )
        self._dropped_eccs = 0
        # One context object serves every cycle; _run_cycle re-stamps
        # the clock and resets the free-capacity cache per cycle/pass.
        self._ctx = SchedulerContext(
            now=start,
            machine=self.machine,
            batch_queue=self.batch_queue,
            dedicated_queue=self.dedicated_queue,
            active=self.active,
        )
        if decisions:
            # Bound method: picklable since Python 3.5, so checkpoints
            # carry the wiring and resumes keep recording decisions.
            self._ctx.explain = self._note_pass_over
        self._cancelled_while_running: set[int] = set()
        self._finish_events: Dict[int, Event] = {}
        self._pending_cycle_time: Optional[float] = None
        # Cycle elision (docs/performance.md): fingerprint of the one
        # cycle proven side-effect free, plus a counter covering job
        # mutations the queue/active versions can't see (applied ECCs).
        self._elidable_token: Optional[tuple] = None
        self._jobs_version = 0
        # Snapshot of repro.core.memo.memo_enabled(); refreshed at the
        # top of run() so the env var is read once per run, not per
        # cycle.  Mirrored onto the context for policy-side hot paths
        # (dedicated_freeze).
        self._memo_on = memo_enabled()
        self._ctx.memo = self._memo_on
        # Stateless policies (the default) keep memo_token() as the
        # base-class constant; skipping the call on every cycle saves
        # two method invocations per scheduling event.
        self._static_memo_token = (
            type(scheduler).memo_token is Scheduler.memo_token
        )
        self.failed_records: List[FailureRecord] = []
        self._lost_work = 0.0
        self._lost_by_job: Dict[int, float] = {}
        self._requeue_count = 0
        self.faults: Optional[FaultInjector] = (
            FaultInjector(self, faults) if faults is not None and faults.enabled else None
        )
        self._wire_events()
        if self.faults is not None:
            self.faults.install()

    def __setstate__(self, state: Dict[str, object]) -> None:
        # Checkpoint forward-compat: runners pickled by versions
        # without the spans/decision-provenance attributes must still
        # resume (repro.durable.checkpoint pickles the whole runner).
        self.__dict__.update(state)
        self.__dict__.setdefault("_spans_out", None)
        self.__dict__.setdefault("_spans_on", False)
        self.__dict__.setdefault("_span_recorder", None)
        self.__dict__.setdefault("_decisions", False)
        self.__dict__.setdefault("_last_pass_reason", {})

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _wire_events(self) -> None:
        if self._streaming:
            if self._stream_first is not None:
                self._admit_stream_item(self._stream_first)
                self._stream_first = None
                self._pump_stream()
            return
        for job in self.jobs:
            self.sim.schedule_at(
                job.submit,
                partial(self._on_arrival, job),
                priority=EventPriority.ARRIVAL,
                name="arrive",
            )
        for ecc in self.workload.eccs:
            self.sim.schedule_at(
                ecc.issue_time,
                partial(self._on_ecc, ecc),
                priority=EventPriority.ECC,
                name="ecc",
            )
        for job in self.jobs:
            if job.cancel_at is not None:
                # User cancellations are commands like ECCs and share
                # their same-instant slot (after finishes, before
                # arrivals of the next batch of work).
                self.sim.schedule_at(
                    job.cancel_at,
                    partial(self._on_cancel, job),
                    priority=EventPriority.ECC,
                    name="cancel",
                )

    # ------------------------------------------------------------------
    # Streaming ingestion (docs/scaling.md)
    # ------------------------------------------------------------------
    def _pump_stream(self) -> None:
        """Top the in-flight window back up to ``stream_window`` items.

        Each admitted item carries exactly one *anchor* event (the
        arrival or the command, at the item's stream time); auxiliary
        events it spawns (cancellations, dedicated-start timers) don't
        count against the window.  Anchors decrement the in-flight
        count when they fire and pump one replacement, so the event
        heap holds O(window + live jobs) entries regardless of the
        stream's length.
        """
        while self._stream_inflight < self._stream_window:
            item = next(self._stream_iter, None)
            if item is None:
                self._stream_exhausted = True
                return
            self._stream_pulled += 1
            self._admit_stream_item(item)

    def _admit_stream_item(self, item: StreamItem) -> None:
        """Validate one pulled item and schedule its anchor event.

        Jobs get the same admission checks the eager constructor runs
        up front (machine fit, dedicated-handling capability,
        duplicate ids — the last only against still-live jobs, since
        retired ids have been reclaimed; the :class:`JobStream`
        contract guarantees global uniqueness).  Commands trust the
        contract that their job was streamed first: a target missing
        from the live map is treated as retired when the command
        fires, not as an error here.
        """
        if isinstance(item, ECC):
            target = self._jobs_by_id.get(item.job_id)
            if target is not None and item.issue_time < target.submit:
                raise ValueError(
                    f"ECC for job {item.job_id} issued at t={item.issue_time} "
                    f"before the job's submission at t={target.submit}"
                )
            self.sim.schedule_at(
                item.issue_time,
                partial(self._on_stream_ecc, item),
                priority=EventPriority.ECC,
                name="ecc",
            )
        else:
            job = item
            if job.job_id in self._jobs_by_id:
                raise ValueError(f"duplicate job ids in workload ({job.job_id})")
            if job.is_dedicated and not self.scheduler.handles_dedicated:
                raise ValueError(
                    f"streamed dedicated job {job.job_id} but "
                    f"{self.scheduler.name} handles batch jobs only "
                    "(use a -D variant)"
                )
            self.machine.validate_request(job.num)
            self._jobs_by_id[job.job_id] = job
            self._jobs_admitted += 1
            # Offered-load accumulation over the *pristine* job, before
            # any ECC can touch it — the streaming replica of
            # Workload.offered_load() (same left-to-right summation).
            runtime = job.effective_runtime()
            end = job.submit + runtime
            if self._span_start is None:
                self._span_start = job.submit
            if end > self._span_end:
                self._span_end = end
            self._work_sum += job.num * runtime
            self.sim.schedule_at(
                job.submit,
                partial(self._on_stream_arrival, job),
                priority=EventPriority.ARRIVAL,
                name="arrive",
            )
            if job.cancel_at is not None:
                self.sim.schedule_at(
                    job.cancel_at,
                    partial(self._on_cancel, job),
                    priority=EventPriority.ECC,
                    name="cancel",
                )
        self._stream_inflight += 1

    def _on_stream_arrival(self, job: Job) -> None:
        self._stream_inflight -= 1
        if not self._stream_exhausted:
            self._pump_stream()
        self._on_arrival(job)

    def _on_stream_ecc(self, ecc: ECC) -> None:
        self._stream_inflight -= 1
        if not self._stream_exhausted:
            self._pump_stream()
        self._on_ecc(ecc)

    def work_remains(self) -> bool:
        """Whether any job may still need the machine.

        Gates the fault injector's failure renewal chain.  Streaming
        runs answer from the admitted/retired counters plus the stream
        frontier; eager runs scan the (fully materialized) job list.
        """
        if self._streaming:
            return (
                not self._stream_exhausted
                or self._jobs_retired < self._jobs_admitted
            )
        return any(
            job.state in (JobState.PENDING, JobState.QUEUED, JobState.RUNNING)
            for job in self.jobs
        )

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _sample_queue_depth(self, now: float) -> None:
        """Telemetry: waiting-job count after any queue transition."""
        self._depth_series.add(
            now, len(self.batch_queue) + len(self.dedicated_queue)
        )

    def _on_arrival(self, job: Job) -> None:
        now = self.sim.now
        if self._trace_on:
            if job.is_dedicated:
                self.trace.record(
                    now, "arrive", job=job.job_id, num=job.num,
                    job_kind=job.kind.value, requested_start=job.requested_start,
                )
            else:
                self.trace.record(
                    now, "arrive", job=job.job_id, num=job.num, job_kind=job.kind.value
                )
        self.queue_tracker.on_enqueue(now, job.num * job.estimate)
        if job.is_dedicated:
            self.dedicated_queue.push(job)
            assert job.requested_start is not None
            if job.requested_start > now:
                self.sim.schedule_at(
                    job.requested_start,
                    self._request_cycle_now,
                    priority=EventPriority.TIMER,
                    name="ded-start",
                )
        else:
            self.batch_queue.push(job)
        self._sample_queue_depth(now)
        self._request_cycle()

    def _on_finish(self, job: Job) -> None:
        now = self.sim.now
        if self.faults is not None:
            self.faults.cancel_job_failure(job)
        self.active.remove(job)
        self.machine.release(job.job_id, time=now)
        job.finish_time = now
        job.state = JobState.FINISHED
        self._finish_events.pop(job.job_id, None)
        record = JobRecord.from_job(job)
        if job.job_id in self._cancelled_while_running:
            record = dataclasses.replace(record, cancelled=True)
        if now > self._last_finish:
            self._last_finish = now
        if self._online is not None:
            # Completion order matches records-append order, so the
            # aggregator's running sums replay the exact float
            # additions of the eager mean() — bitwise-equal results.
            self._online.observe(record)
        if self._retain_records:
            self.records.append(record)
        self._jobs_retired += 1
        if self._streaming:
            # Reclaim the Job object; late commands aimed at it resolve
            # to DROPPED_FINISHED from the id lookup failing instead.
            del self._jobs_by_id[job.job_id]
        if self._trace_on:
            self.trace.record(now, "finish", job=job.job_id, num=job.num)
        self._request_cycle()

    def _on_cancel(self, job: Job) -> None:
        """SWF status-5 semantics: withdraw a queued job; terminate a
        running one at the cancellation instant."""
        now = self.sim.now
        if job.state is JobState.QUEUED:
            if job.is_dedicated and any(
                j.job_id == job.job_id for j in self.dedicated_queue
            ):
                self.dedicated_queue.remove(job)
            else:
                self.batch_queue.remove(job)
            job.state = JobState.CANCELLED
            self.queue_tracker.on_dequeue(now, job.num * job.estimate)
            self.cancelled_records.append(
                CancellationRecord(
                    job_id=job.job_id,
                    kind=job.kind,
                    num=job.num,
                    submit=job.submit,
                    cancelled_at=now,
                )
            )
            # Terminal for work_remains(); the Job object stays in
            # _jobs_by_id so a late ECC still finds its real state
            # (cancelled jobs are rare enough not to threaten memory).
            self._jobs_retired += 1
            if self._trace_on:
                self.trace.record(now, "cancel", job=job.job_id, num=job.num, was="queued")
            self._sample_queue_depth(now)
            self._request_cycle()
        elif job.state is JobState.RUNNING:
            if self._trace_on:
                self.trace.record(now, "cancel", job=job.job_id, num=job.num, was="running")
            job.killed = True
            self._cancelled_while_running.add(job.job_id)
            self._reschedule_finish(job, now)
        # PENDING cannot happen (cancel_at >= submit is validated) and
        # FINISHED cancellations are no-ops.

    def _on_ecc(self, ecc: ECC) -> None:
        now = self.sim.now
        self.telemetry.count("ecc_commands")
        if not self.scheduler.elastic:
            # Non-elastic policies have no ECC processor appended; the
            # command is silently dropped (recorded for diagnostics).
            self._dropped_eccs += 1
            if self._trace_on:
                self.trace.record(now, "ecc-dropped", job=ecc.job_id, ecc_kind=ecc.kind.value)
            return
        job = self._jobs_by_id.get(ecc.job_id)
        if job is None:
            if self._streaming:
                # Streaming retires finished jobs from the live map, so
                # a command outliving its job lands here; mirror the
                # eager path's ECCProcessor verdict for FINISHED jobs.
                self.ecc_processor.stats[ECCOutcome.DROPPED_FINISHED] += 1
                if self._trace_on:
                    self.trace.record(
                        now,
                        "ecc",
                        job=ecc.job_id,
                        ecc_kind=ecc.kind.value,
                        amount=ecc.amount,
                        outcome=ECCOutcome.DROPPED_FINISHED.value,
                    )
                return
            raise SimulationError(f"ECC references unknown job {ecc.job_id}")
        estimate_before = job.estimate
        num_before = job.num
        recorder = self._span_recorder
        if recorder is None:
            result = self.ecc_processor.apply(ecc, job, now, free=self._free_now())
        else:
            span_token = recorder.begin("ecc_apply")
            try:
                result = self.ecc_processor.apply(ecc, job, now, free=self._free_now())
            finally:
                recorder.end(span_token)
        if result.old_num is None and job.num != num_before:
            # An EP/RP landed on a *queued* job (the processor mutates
            # job.num in place): keep the batch queue's size index
            # honest.  Tolerant no-op for dedicated/pending jobs.
            self.batch_queue.note_resize(job)
        if result.old_num is not None:
            # A running job was resized: mirror the new size into the
            # machine allocation and the active-list aggregate before
            # anything else reads free capacity.
            self.machine.resize(job.job_id, job.num, time=now)
            self.active.note_resize(job.num - result.old_num)
        if result.outcome.applied and job.state is not JobState.RUNNING and job.state is not JobState.FINISHED:
            # Queued/pending work changed: keep the backlog integral exact.
            self.queue_tracker.on_work_changed(
                now, job.num * (job.estimate - estimate_before)
            )
        if self._trace_on:
            self.trace.record(
                now,
                "ecc",
                job=ecc.job_id,
                ecc_kind=ecc.kind.value,
                amount=ecc.amount,
                outcome=result.outcome.value,
                # Post-command size: lets trace analytics map EP/RP
                # commands to allocation deltas (repro trace --check).
                num=job.num,
            )
        if result.outcome is ECCOutcome.APPLIED_RUNNING:
            assert result.new_kill_by is not None
            self._reschedule_finish(job, result.new_kill_by)
        elif result.outcome is ECCOutcome.TERMINATED_JOB:
            self._reschedule_finish(job, now)
        if result.outcome.applied:
            self._jobs_version += 1
            if job.state is JobState.RUNNING:
                self.active.resort()
            self._request_cycle()

    def _free_now(self) -> int:
        """Free processors at this instant (the context's ``free``,
        computed fresh — the cached one may predate this event)."""
        machine = self.machine
        return machine.total - machine._offline_procs - self.active.total_used

    def _reschedule_finish(self, job: Job, when: float) -> None:
        old = self._finish_events.pop(job.job_id, None)
        if old is not None:
            old.cancel()
        self._finish_events[job.job_id] = self.sim.schedule_at(
            when,
            partial(self._on_finish, job),
            priority=EventPriority.FINISH,
            name="finish",
        )

    # ------------------------------------------------------------------
    # Failure recovery (docs/resilience.md)
    # ------------------------------------------------------------------
    def _fail_running_job(self, job: Job, *, release: bool, reason: str) -> None:
        """Terminate a running job's attempt; requeue or fail it.

        Args:
            job: The victim (must be RUNNING).
            release: Whether the machine allocation still needs
                releasing (pset eviction already released it).
            reason: ``"crash"`` or ``"evicted"`` (trace/records).

        The attempt's partial execution is charged to ``lost_work``,
        minus any checkpoint credit: with ``retry.checkpoint`` under an
        elastic policy the elapsed work is preserved as a synthetic RT
        command through the ECC processor, shrinking the restart's
        runtime (and honouring the per-job ECC budget).  The job then
        either re-enters the batch queue after the policy's backoff —
        at the tail, with a fresh effective arrival — or, once the
        retry budget is exhausted, fails permanently into a
        :class:`FailureRecord`.
        """
        now = self.sim.now
        assert job.state is JobState.RUNNING and job.start_time is not None, job
        pending = self._finish_events.pop(job.job_id, None)
        if pending is not None:
            pending.cancel()
        if self.faults is not None:
            self.faults.cancel_job_failure(job)
        self.active.remove(job)
        if release:
            self.machine.release(job.job_id, time=now)
        elapsed = now - job.start_time
        job.requeues += 1
        attempt = job.requeues
        job.state = JobState.PENDING
        job.start_time = None
        job.killed = False
        preserved = 0.0
        if self.retry.checkpoint and self.scheduler.elastic and elapsed > 0:
            estimate_before = job.estimate
            result = self.ecc_processor.apply(
                ECC(
                    job_id=job.job_id,
                    issue_time=now,
                    kind=ECCKind.REDUCE_TIME,
                    amount=elapsed,
                ),
                job,
                now,
            )
            if result.outcome.applied:
                preserved = estimate_before - job.estimate
        lost = job.num * max(0.0, elapsed - preserved)
        self._lost_work += lost
        self._lost_by_job[job.job_id] = self._lost_by_job.get(job.job_id, 0.0) + lost
        if self._trace_on:
            self.trace.record(
                now, "job-fail", job=job.job_id, num=job.num,
                reason=reason, attempt=attempt, lost=lost,
            )
        permanent = attempt > self.retry.max_retries
        if permanent:
            job.state = JobState.FAILED
            job.finish_time = now
            self.failed_records.append(
                FailureRecord(
                    job_id=job.job_id,
                    kind=job.kind,
                    num=job.num,
                    submit=job.submit,
                    failed_at=now,
                    attempts=attempt,
                    lost_work=self._lost_by_job[job.job_id],
                    reason=reason,
                )
            )
            if self._trace_on:
                self.trace.record(now, "job-failed-permanently", job=job.job_id, attempts=attempt)
            # Terminal for work_remains(); like cancelled jobs, the
            # object stays in _jobs_by_id for late-ECC state checks.
            self._jobs_retired += 1
        else:
            if self._decisions:
                # The job is off the queue waiting out its backoff —
                # the one pass-over the policies never see.
                self._note_pass_over(job, REASON_FAULT_BACKOFF)
            self.sim.schedule_in(
                self.retry.delay(attempt),
                partial(self._on_requeue, job),
                priority=EventPriority.ARRIVAL,
                name="requeue",
            )
        self.scheduler.on_job_failure(job, now, permanent)
        self._request_cycle()

    def _on_requeue(self, job: Job) -> None:
        """Backoff expired: the failed job rejoins the batch queue."""
        now = self.sim.now
        if self._decisions:
            # A new wait episode: report the next pass-over afresh.
            self._last_pass_reason.pop(job.job_id, None)
        self.batch_queue.push_requeue(job, now)
        self.queue_tracker.on_enqueue(now, job.num * job.estimate)
        self._requeue_count += 1
        if self._trace_on:
            self.trace.record(now, "requeue", job=job.job_id, attempt=job.requeues)
        self._sample_queue_depth(now)
        self._request_cycle()

    # ------------------------------------------------------------------
    # Decision provenance (docs/observability.md)
    # ------------------------------------------------------------------
    def _note_pass_over(self, job: Job, reason: str) -> None:
        """Record why ``job`` was passed over (the ``ctx.explain`` sink).

        Wired onto the context only when ``decisions=True``, so the
        default path never reaches here.  Deduplicated on the job's
        *last* reason: policies re-report on every pass while a stall
        persists, so only changes land as ``decision`` records in the
        trace stream (``repro explain --job N`` renders them).
        """
        if self._last_pass_reason.get(job.job_id) == reason:
            return
        self._last_pass_reason[job.job_id] = reason
        self.telemetry.count("decisions_recorded")
        if self._trace_on:
            self.trace.record(
                self.sim.now, "decision", job=job.job_id, reason=reason, num=job.num
            )

    # ------------------------------------------------------------------
    # Scheduling cycle
    # ------------------------------------------------------------------
    def _request_cycle_now(self) -> None:
        """Timer handler: a rigid dedicated start time was reached."""
        self._run_cycle()

    def _request_cycle(self) -> None:
        """Schedule one cycle at ``now`` (deduplicated per instant)."""
        now = self.sim.now
        if self._pending_cycle_time == now:
            return
        self._pending_cycle_time = now
        self.sim.schedule_at(
            now,
            self._run_cycle,
            priority=EventPriority.SCHEDULE,
            name="cycle",
        )

    def _elision_token(self) -> tuple:
        """O(1) fingerprint of the decision-relevant state at ``now``.

        Every input a policy can read is covered: the clock, queue and
        active-list mutation versions (membership, order, kill-by
        times), the job-mutation counter (applied ECCs), the machine's
        used/offline counters (which, with ``total`` fixed, determine
        free and available capacity; allocations, faults and repairs
        all move them), the batch head's skip count (the one field
        policies themselves mutate), and the policy's own
        :meth:`~repro.core.base.Scheduler.memo_token` (skipped for
        stateless policies that keep the base-class constant).

        ``_run_cycle`` inlines this construction — keep the two in
        sync.
        """
        head = self.batch_queue.head
        return (
            self.sim.now,
            self.batch_queue.version,
            self.dedicated_queue.version,
            self.active.version,
            self._jobs_version,
            self.machine._used,
            self.machine._offline_procs,
            None if head is None else (head.job_id, head.scount),
            None if self._static_memo_token else self.scheduler.memo_token(),
        )

    def _run_cycle(self) -> None:
        now = self.sim.now
        if self._pending_cycle_time == now:
            self._pending_cycle_time = None
        token: Optional[tuple] = None
        batch_queue = self.batch_queue
        scheduler = self.scheduler
        if self._memo_on:
            # Inlined _elision_token() — this runs on every scheduling
            # event, and the attribute walks dominate the method call.
            # Components 5/6 use the machine's raw counters rather than
            # the free/available properties: with ``total`` fixed,
            # (used, offline) and (free, available) determine each
            # other, so the fingerprint is equally tight.
            machine = self.machine
            head = batch_queue.head
            token = (
                now,
                batch_queue.version,
                self.dedicated_queue.version,
                self.active.version,
                self._jobs_version,
                machine._used,
                machine._offline_procs,
                None if head is None else (head.job_id, head.scount),
                None if self._static_memo_token else scheduler.memo_token(),
            )
            if token == self._elidable_token:
                # This exact state already produced an empty, mutation-
                # free first pass at this instant; re-running the policy
                # would be the identity.
                self._n_cycles_elided += 1
                return
        self._n_cycles += 1
        started = perf_counter()
        recorder = self._span_recorder
        # begin_at/end_at reuse this method's own clock reads so the
        # span costs the hot cycle no extra perf_counter() calls.
        span_token = (
            None if recorder is None else recorder.begin_at("schedule_cycle", started)
        )
        ctx = self._ctx
        ctx.now = now
        ctx._free = None  # invalidate_free(), inlined for the hot loop
        pass_index = 0
        try:
            for pass_index in range(MAX_CYCLE_PASSES):
                ctx.allow_scount_increment = pass_index == 0
                decision = scheduler.cycle(ctx)
                if not (decision.starts or decision.promotions or decision.commands):
                    if pass_index == 0 and token is not None:
                        # A policy touches nothing but the batch head's
                        # scount and its own internal state during an
                        # empty pass (queues, machine and clock are
                        # runner-owned), so only those two fingerprint
                        # components need re-checking.
                        head = batch_queue.head
                        if token[7] == (
                            None if head is None else (head.job_id, head.scount)
                        ) and token[8] == (
                            None
                            if self._static_memo_token
                            else scheduler.memo_token()
                        ):
                            # Empty on the *first* pass (so scount
                            # rules matched a fresh cycle) and nothing
                            # mutated: a repeat at this instant is
                            # safe to skip.
                            self._elidable_token = token
                    return
                self._apply(decision)
                ctx._free = None
        finally:
            self._n_passes += pass_index + 1
            ended = perf_counter()
            self._sched_wall += ended - started
            if span_token is not None:
                recorder.end_at(span_token, ended)
        raise SimulationError(
            f"scheduler {self.scheduler.name} did not reach a fix-point "
            f"within {MAX_CYCLE_PASSES} passes at t={now}"
        )

    def _apply_commands(self, commands: List[ECC], now: float) -> None:
        """Apply a malleable policy's synthetic shrink/expand commands.

        Each command goes through the run's ECC processor with
        ``scheduler_initiated=True`` (docs/malleability.md), then the
        machine allocation, active-list aggregate and finish event are
        patched from the result — the same bookkeeping the workload-ECC
        path performs, factored here because commands arrive in batches
        within a scheduling pass.  Policies only emit commands they
        validated against the snapshot they decided on, so a rejection
        here is a policy/runner disagreement and fails loudly.
        """
        trace_on = self._trace_on
        telemetry = self.telemetry
        for ecc in commands:
            job = self._jobs_by_id.get(ecc.job_id)
            if job is None or job.state is not JobState.RUNNING:
                raise SimulationError(
                    f"{self.scheduler.name} issued a command for job "
                    f"{ecc.job_id} which is not running at t={now}"
                )
            num_before = job.num
            old_kill_by = job.kill_by()
            result = self.ecc_processor.apply(
                ecc, job, now, free=self._free_now(), scheduler_initiated=True
            )
            if not result.outcome.applied or result.old_num is None:
                raise SimulationError(
                    f"{self.scheduler.name}'s {ecc.kind.value} command for "
                    f"running job {ecc.job_id} came back "
                    f"{result.outcome.value} at t={now}; malleable policies "
                    "must pre-validate their commands"
                )
            self.machine.resize(job.job_id, job.num, time=now)
            self.active.note_resize(job.num - num_before)
            if result.outcome is ECCOutcome.TERMINATED_JOB:
                self._reschedule_finish(job, now)
            else:
                assert result.new_kill_by is not None
                self._reschedule_finish(job, result.new_kill_by)
            new_kill_by = now if result.new_kill_by is None else result.new_kill_by
            if job.num < num_before:
                telemetry.count("malleable_shrinks")
                # Node-seconds handed back now, priced at the *donor's*
                # pre-shrink horizon (int-rounded; docs/observability.md).
                telemetry.count(
                    "malleable_node_s_reclaimed",
                    int(round((num_before - job.num) * (old_kill_by - now))),
                )
                telemetry.count("malleable_procs_reclaimed", num_before - job.num)
            else:
                telemetry.count("malleable_expands")
                telemetry.count(
                    "malleable_node_s_soaked",
                    int(round((job.num - num_before) * (new_kill_by - now))),
                )
                telemetry.count("malleable_procs_soaked", job.num - num_before)
            self._jobs_version += 1
            if trace_on:
                self.trace.record(
                    now,
                    "ecc",
                    job=ecc.job_id,
                    ecc_kind=ecc.kind.value,
                    amount=ecc.amount,
                    outcome=result.outcome.value,
                    num=job.num,
                    # Distinguishes scheduler-initiated commands from
                    # workload ECCs in trace analytics.
                    origin="scheduler",
                )
        # Kill-by times moved; restore ordering before any start
        # bisects into the list.
        self.active.resort()

    def _apply(self, decision: CycleDecision) -> None:
        now = self.sim.now
        trace_on = self._trace_on
        if decision.commands:
            recorder = self._span_recorder
            if recorder is None:
                self._apply_commands(decision.commands, now)
            else:
                span_token = recorder.begin("ecc_apply")
                try:
                    self._apply_commands(decision.commands, now)
                finally:
                    recorder.end(span_token)
        for job in decision.promotions:
            # Algorithm 3: the due dedicated head becomes the head of
            # the batch queue (scount was set by the policy).
            self.dedicated_queue.remove(job)
            self.batch_queue.push_head(job)
            if trace_on:
                self.trace.record(now, "promote", job=job.job_id, scount=job.scount)
        for job in decision.starts:
            if self._decisions:
                # The stall ended; a later one must re-report.
                self._last_pass_reason.pop(job.job_id, None)
            self.batch_queue.remove(job)
            self.queue_tracker.on_dequeue(now, job.num * job.estimate)
            self.machine.allocate(job.job_id, job.num, time=now)
            job.start_time = now
            job.killed = job.actual is not None and job.actual > job.estimate
            self.active.add(job)
            self._reschedule_finish(job, now + job.effective_runtime())
            if self.faults is not None:
                self.faults.on_job_start(job)
            if trace_on:
                self.trace.record(now, "start", job=job.job_id, num=job.num)
        if decision.starts:
            self._sample_queue_depth(now)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        *,
        checkpoint: Optional[object] = None,
    ) -> RunMetrics:
        """Run to completion and return the aggregate metrics.

        Args:
            until: Optional inclusive horizon (engine semantics).
            checkpoint: Optional
                :class:`~repro.durable.checkpoint.CheckpointConfig`
                (or a checkpoint directory path) enabling periodic
                crash-consistent checkpoints plus a final checkpoint
                on SIGINT/SIGTERM (docs/resilience.md).  ``None``
                (default) runs the plain fast drain loop —
                checkpointing off costs nothing.

        Raises:
            SimulationError: when events drain with jobs still waiting
                (a policy starved them — always a bug).
            CheckpointInterrupt: when a shutdown signal arrived and the
                final checkpoint was written (resume from it later).
        """
        writer = self._trace_writer
        if writer is None and self._trace_out is not None:
            from repro.obs.trace_io import TraceWriter

            writer = TraceWriter(self._trace_out, meta=self._trace_meta())
            self._trace_writer = writer
        if writer is not None:
            self.trace.sink = writer.write
        # Each run starts with cold DP caches so the dp_cache_* /
        # dp_invocations counters are a pure function of the run —
        # identical serial, parallel, or repeated in one process.
        clear_caches()
        self._memo_on = memo_enabled()
        self._ctx.memo = self._memo_on
        # Spans get a fresh recorder per run() call: segments of a
        # split run (run(until=...)) each fold their own totals, and a
        # checkpoint-resumed process profiles its own segment only —
        # decision records, not spans, are what resume reproduces
        # bitwise.
        # Timeline (per-span Chrome slices) only when an export was
        # requested; aggregate-only mode is the cheap default.
        recorder = (
            obs_spans.SpanRecorder(timeline=self._spans_out is not None)
            if self._spans_on
            else None
        )
        self._span_recorder = recorder
        try:
            # The active registries let instrumented library code
            # (repro.core.dp, repro.core.easy, the engine loop) report
            # without plumbing handles through every policy signature.
            with ExitStack() as stack:
                stack.enter_context(obs_telemetry.activated(self.telemetry))
                if recorder is not None:
                    stack.enter_context(obs_spans.activated(recorder))
                with self.telemetry.timeit("run_wall_s"):
                    if checkpoint is None:
                        self.sim.run(until=until)
                    else:
                        from repro.durable.checkpoint import (
                            CheckpointConfig,
                            drive_checkpointed,
                        )

                        drive_checkpointed(
                            self, CheckpointConfig.coerce(checkpoint), until=until
                        )
                self._fold_dp_cache_telemetry()
        finally:
            if recorder is not None:
                self._span_recorder = None
                recorder.fold_into(self.telemetry)
                if self._spans_out is not None:
                    recorder.write_chrome_trace(self._spans_out)
            if writer is not None:
                self.trace.sink = None
                self._trace_writer = None
                writer.close()
        if self._streaming:
            # The live map holds queued/running jobs plus the (rare)
            # cancelled/failed ones kept for late-ECC lookups; the
            # counters tell them apart without a full-workload list.
            leftover = self._jobs_admitted - self._jobs_retired
            if leftover and until is None:
                ids = [
                    job_id
                    for job_id, job in self._jobs_by_id.items()
                    if job.state
                    not in (JobState.FINISHED, JobState.CANCELLED, JobState.FAILED)
                ][:10]
                raise SimulationError(
                    f"{self.scheduler.name} left {leftover} jobs unfinished "
                    f"(first ids: {ids}); starvation or wiring bug"
                )
            return self._metrics()
        unfinished = [
            job
            for job in self.jobs
            if job.state
            not in (JobState.FINISHED, JobState.CANCELLED, JobState.FAILED)
        ]
        if unfinished and until is None:
            ids = [job.job_id for job in unfinished[:10]]
            raise SimulationError(
                f"{self.scheduler.name} left {len(unfinished)} jobs unfinished "
                f"(first ids: {ids}); starvation or wiring bug"
            )
        return self._metrics()

    def _trace_meta(self) -> Dict[str, object]:
        """Header metadata for a streamed trace file."""
        from repro import __version__

        if self._streaming:
            hint = self.workload.n_jobs_hint
            return {
                "algorithm": self.scheduler.name,
                "machine_size": self.machine.total,
                "granularity": self.machine.granularity,
                # Streams don't know their length up front; -1 marks
                # "unknown" so readers never mistake it for an empty run.
                "n_jobs": hint if hint is not None else -1,
                "n_eccs": -1,
                "streaming": True,
                "faulty": self.faults is not None,
                "repro_version": __version__,
            }
        return {
            "algorithm": self.scheduler.name,
            "machine_size": self.machine.total,
            "granularity": self.machine.granularity,
            "n_jobs": len(self.jobs),
            "n_eccs": len(self.workload.eccs),
            "faulty": self.faults is not None,
            "repro_version": __version__,
        }

    def _fold_dp_cache_telemetry(self) -> None:
        """Fold the DP caches' probe counters into the registry.

        :func:`repro.core.memo.lookup` counts probes on the caches
        instead of bumping the registry per call; this folds (and
        resets) those counts so repeated ``run(until=...)`` segments
        accumulate exactly like the old per-probe counting did.
        """
        telemetry = self.telemetry
        hits = BASIC_CACHE.hits + RESERVATION_CACHE.hits
        misses = BASIC_CACHE.misses + RESERVATION_CACHE.misses
        if hits:
            telemetry.count("dp_cache_hits", hits)
        if misses:
            telemetry.count("dp_cache_misses", misses)
        BASIC_CACHE.hits = BASIC_CACHE.misses = 0
        RESERVATION_CACHE.hits = RESERVATION_CACHE.misses = 0

    def _fold_cycle_telemetry(self) -> None:
        """Fold the batched cycle counters into the registry.

        The attributes are reset so repeated ``run(until=...)`` /
        ``_metrics()`` calls accumulate instead of double-counting;
        zero counters stay absent, exactly as with per-cycle counting.
        """
        telemetry = self.telemetry
        if self._n_cycles:
            telemetry.count("schedule_cycles", self._n_cycles)
        if self._n_cycles_elided:
            telemetry.count("cycles_elided", self._n_cycles_elided)
        if self._n_passes:
            telemetry.count("schedule_passes", self._n_passes)
        if self._sched_wall:
            telemetry.add_time("schedule_wall_s", self._sched_wall)
        self._n_cycles = self._n_cycles_elided = self._n_passes = 0
        self._sched_wall = 0.0

    def _offered_load(self) -> float:
        """The paper's Load of the input workload.

        Streaming runs reproduce :func:`repro.workload.load.offered_load`
        from the scalars accumulated at admission (pristine jobs, same
        summation order — bitwise-equal to the eager value); eager runs
        delegate to the workload object.
        """
        if not self._streaming:
            return self.workload.offered_load()
        if self._span_start is None:
            return 0.0
        span = self._span_end - self._span_start
        if span <= 0:
            return 0.0
        return self._work_sum / (self.machine.total * span)

    def _fold_sampling_telemetry(self) -> None:
        """Surface bounded-buffer drop counts as telemetry counters.

        Written as absolute values (not increments) so repeated
        ``run(until=...)`` / ``_metrics()`` calls stay idempotent;
        zero counts stay absent like every other counter.  The
        queue-depth series reports its own drops via the registry
        (``queue_depth_samples_dropped``).
        """
        counters = self.telemetry.counters
        dropped = self.tracker.samples_dropped
        if dropped:
            counters["utilization_samples_dropped"] = dropped
        dropped = self.queue_tracker.samples_dropped
        if dropped:
            counters["queue_length_samples_dropped"] = dropped

    def _metrics(self) -> RunMetrics:
        self._fold_cycle_telemetry()
        self._fold_sampling_telemetry()
        last_finish = self._last_finish
        ecc_stats = {
            outcome.value: count
            for outcome, count in self.ecc_processor.stats.items()
            if count
        }
        if self._dropped_eccs:
            ecc_stats["dropped-not-elastic"] = self._dropped_eccs
        utilization = self.tracker.mean_utilization(
            self.machine.total, until=last_finish
        )
        makespan = last_finish - self.tracker.start_time
        online_summary = None
        if self._online is not None:
            online_summary = self._online.summary(
                utilization=utilization, makespan=makespan
            )
        return RunMetrics(
            algorithm=self.scheduler.name,
            machine_size=self.machine.total,
            records=list(self.records),
            utilization=utilization,
            makespan=makespan,
            offered_load=self._offered_load(),
            ecc_stats=ecc_stats,
            events_processed=self.sim.processed_events,
            queue=self.queue_tracker.summary(until=last_finish),
            cancelled_records=list(self.cancelled_records),
            failed_records=list(self.failed_records),
            lost_work=self._lost_work,
            requeue_count=self._requeue_count,
            degraded_time=self.machine.degraded_time(until=last_finish),
            node_failures=self.faults.node_failures if self.faults else 0,
            telemetry=self.telemetry.snapshot(),
            online=online_summary,
        )


def simulate(
    workload: Optional[Union[Workload, JobStream]] = None,
    scheduler: Optional[Scheduler] = None,
    *,
    trace: bool = False,
    trace_out: Optional[Union[str, Path]] = None,
    spans: bool = False,
    spans_out: Optional[Union[str, Path]] = None,
    decisions: bool = False,
    max_eccs_per_job: Optional[int] = None,
    faults: Optional[FaultConfig] = None,
    retry: Optional[RetryPolicy] = None,
    online: bool = False,
    retain_records: bool = True,
    checkpoint: Optional[object] = None,
    resume_from: Optional[Union[str, Path]] = None,
) -> RunMetrics:
    """One-shot convenience wrapper around :class:`SimulationRunner`.

    Args:
        spans: Record phase spans into the telemetry snapshot
            (:mod:`repro.obs.spans`).
        spans_out: Write a Chrome trace-event JSON file of the spans
            (implies ``spans=True``).
        decisions: Emit per-job ``decision`` (pass-over provenance)
            records into the trace stream.
        checkpoint: Enable periodic crash-consistent checkpoints — a
            :class:`~repro.durable.checkpoint.CheckpointConfig` or a
            checkpoint directory path (docs/resilience.md).
        resume_from: Restore the runner from a checkpoint file (or the
            newest usable checkpoint in a directory) and run it to
            completion — bitwise-identical to the uninterrupted run.
            Mutually exclusive with ``workload``/``scheduler`` (the
            checkpoint carries the full simulation state; the other
            keyword arguments except ``checkpoint`` are ignored).
    """
    if resume_from is not None:
        if workload is not None or scheduler is not None:
            raise ValueError(
                "resume_from rebuilds the runner from the checkpoint; "
                "don't pass workload/scheduler as well"
            )
        from repro.durable.checkpoint import resume

        return resume(resume_from, checkpoint=checkpoint)
    if workload is None or scheduler is None:
        raise TypeError("simulate() needs a workload and a scheduler (or resume_from=)")
    return SimulationRunner(
        workload,
        scheduler,
        trace=trace,
        trace_out=trace_out,
        spans=spans,
        spans_out=spans_out,
        decisions=decisions,
        max_eccs_per_job=max_eccs_per_job,
        faults=faults,
        retry=retry,
        online=online,
        retain_records=retain_records,
    ).run(checkpoint=checkpoint)


__all__ = ["MAX_CYCLE_PASSES", "SimulationRunner", "simulate"]
