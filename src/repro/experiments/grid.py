"""Parameter-grid studies.

The paper explores (P_S, P_D, Load, C_s) one dimension at a time;
:func:`run_grid` sweeps full Cartesian grids of those knobs across
algorithms and returns flat rows ready for CSV/pandas — the tooling a
user adopting the library needs when mapping *their* workload regime.
"""

from __future__ import annotations

import csv
import itertools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, Union

from repro.experiments.calibrate import calibrate_beta_arr
from repro.experiments.parallel import parallel_map
from repro.experiments.sweep import run_algorithms
from repro.workload.generator import GeneratorConfig
from repro.workload.twostage import TwoStageSizeConfig


@dataclass(frozen=True)
class GridSpec:
    """A Cartesian parameter grid.

    Attributes:
        p_small: ``P_S`` values.
        p_dedicated: ``P_D`` values (0 = batch-only; non-zero grids
            must use dedicated-capable algorithms).
        loads: target offered loads (calibrated per cell).
        cs_values: ``C_s`` values for the Delayed/Hybrid family.
        algorithms: registry names to run per cell.
        n_jobs: workload size per cell.
        seed: base seed; each cell gets a distinct derived seed.
        p_extend / p_reduce: ECC injection (with -E algorithms).
    """

    p_small: Sequence[float] = (0.2, 0.5, 0.8)
    p_dedicated: Sequence[float] = (0.0,)
    loads: Sequence[float] = (0.7, 0.9)
    cs_values: Sequence[int] = (7,)
    algorithms: Sequence[str] = ("EASY", "LOS", "Delayed-LOS")
    n_jobs: int = 200
    seed: int = 1000
    p_extend: float = 0.0
    p_reduce: float = 0.0

    def cells(self) -> List[tuple]:
        """All (p_small, p_dedicated, load, cs) combinations."""
        return list(
            itertools.product(self.p_small, self.p_dedicated, self.loads, self.cs_values)
        )


@dataclass
class GridResult:
    """Long-form grid outcome: one row per (cell, algorithm)."""

    FIELDS = (
        "p_small",
        "p_dedicated",
        "target_load",
        "achieved_load",
        "cs",
        "algorithm",
        "utilization",
        "mean_wait",
        "slowdown",
        "makespan",
        "n_jobs",
    )

    rows: List[Dict[str, float]] = field(default_factory=list)

    def best_algorithm(self, p_small: float, p_dedicated: float, load: float) -> str:
        """Lowest-mean-wait algorithm in a cell (first C_s value)."""
        candidates = [
            row
            for row in self.rows
            if row["p_small"] == p_small
            and row["p_dedicated"] == p_dedicated
            and row["target_load"] == load
        ]
        if not candidates:
            raise KeyError(f"no grid cell ({p_small}, {p_dedicated}, {load})")
        return min(candidates, key=lambda row: row["mean_wait"])["algorithm"]

    def to_csv(self, target: Union[str, Path, TextIO]) -> None:
        """Write the long-form rows as CSV."""
        if isinstance(target, (str, Path)):
            with open(target, "w", encoding="utf-8", newline="") as fh:
                self.to_csv(fh)
            return
        writer = csv.DictWriter(target, fieldnames=self.FIELDS)
        writer.writeheader()
        for row in self.rows:
            writer.writerow(row)


def _run_cell(task: tuple) -> List[Dict[str, float]]:
    """Calibrate and simulate one grid cell (worker-side)."""
    spec, index, (p_small, p_dedicated, load, cs) = task
    config = GeneratorConfig(
        n_jobs=spec.n_jobs,
        size=TwoStageSizeConfig(p_small=p_small),
        p_dedicated=p_dedicated,
        p_extend=spec.p_extend,
        p_reduce=spec.p_reduce,
    )
    calibration = calibrate_beta_arr(config, load, seed=spec.seed + index)
    outcomes = run_algorithms(calibration.workload, spec.algorithms, max_skip_count=cs)
    return [
        {
            "p_small": p_small,
            "p_dedicated": p_dedicated,
            "target_load": load,
            "achieved_load": round(calibration.achieved_load, 4),
            "cs": cs,
            "algorithm": name,
            "utilization": round(metrics.utilization, 6),
            "mean_wait": round(metrics.mean_wait, 2),
            "slowdown": round(metrics.slowdown, 4),
            "makespan": round(metrics.makespan, 1),
            "n_jobs": metrics.n_jobs,
        }
        for name, metrics in outcomes.items()
    ]


def run_grid(
    spec: GridSpec,
    progress: Optional[Iterable] = None,
    *,
    jobs: Optional[int] = None,
) -> GridResult:
    """Run every grid cell; returns the long-form result.

    Cells are calibrated and simulated independently with derived
    seeds, so the grid is embarrassingly deterministic — and whole
    cells fan out over worker processes.  Rows come back in cell
    order regardless of completion order.
    """
    tasks = [(spec, index, cell) for index, cell in enumerate(spec.cells())]
    work_hint = len(tasks) * spec.n_jobs * len(spec.algorithms)
    result = GridResult()
    for rows in parallel_map(_run_cell, tasks, jobs=jobs, work_hint=work_hint):
        result.rows.extend(rows)
    return result


__all__ = ["GridResult", "GridSpec", "run_grid"]
