"""Experiment harness: runner, sweeps, calibration, figures, tables.

- :mod:`repro.experiments.runner` — event-driven simulation of one
  (workload, scheduler) pair, producing :class:`RunMetrics`,
- :mod:`repro.experiments.parallel` — fans independent runs out over
  worker processes (``REPRO_JOBS``), deterministic serial fallback,
- :mod:`repro.experiments.cache` — content-addressed on-disk cache of
  run metrics (``REPRO_CACHE=1``), so re-runs only simulate the delta,
- :mod:`repro.experiments.calibrate` — finds the ``β_arr`` that hits a
  target offered load (the paper's load knob),
- :mod:`repro.experiments.sweep` — seeded parameter sweeps across
  algorithms,
- :mod:`repro.experiments.figures` — one entry point per paper figure,
- :mod:`repro.experiments.tables` — Tables IV–VII max-% improvements,
- :mod:`repro.experiments.ascii_plot` — terminal line plots for the
  benchmark harness output.
"""

from repro.experiments.cache import RunCache, run_key, workload_digest
from repro.experiments.calibrate import calibrate_beta_arr
from repro.experiments.config import ExperimentConfig
from repro.experiments.fidelity import FidelityScore, score_fidelity
from repro.experiments.grid import GridResult, GridSpec, run_grid
from repro.experiments.parallel import (
    RunSpec,
    execute_runs,
    parallel_map,
    resolve_jobs,
)
from repro.experiments.runner import SimulationRunner, simulate
from repro.experiments.sweep import SweepResult, run_algorithms

__all__ = [
    "ExperimentConfig",
    "FidelityScore",
    "GridResult",
    "GridSpec",
    "RunCache",
    "RunSpec",
    "SimulationRunner",
    "SweepResult",
    "calibrate_beta_arr",
    "execute_runs",
    "parallel_map",
    "resolve_jobs",
    "run_algorithms",
    "run_grid",
    "run_key",
    "score_fidelity",
    "simulate",
    "workload_digest",
]
