"""Experiment configuration shared by figures, tables and benches."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

from repro.workload.generator import GeneratorConfig


@dataclass(frozen=True)
class ExperimentConfig:
    """One §V experiment: a workload family, algorithms and a sweep.

    Attributes:
        generator: Base workload generator configuration (``P_S``,
            ``P_D``, ``P_E``, ``P_R`` live inside).
        algorithms: Registry names to compare.
        max_skip_count: ``C_s`` for the Delayed/Hybrid entries.  The
            paper tunes it per ``P_S`` ("we first empirically obtain
            the optimal value of C_s for a given value of P_S").
        lookahead: DP window for the LOS family.
        loads: Target offered loads for a load sweep (Figures 7–10).
        seed: Base RNG seed; point ``i`` of a sweep uses ``seed + i``
            so points are independent draws, like the paper's
            one-run-per-point methodology.
        max_eccs_per_job: Optional ECC budget for elastic runs.
    """

    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    algorithms: Tuple[str, ...] = ("EASY", "LOS", "Delayed-LOS")
    max_skip_count: int = 7
    lookahead: Optional[int] = 50
    loads: Tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
    seed: int = 20120521  # IPPS 2012 conference date
    max_eccs_per_job: Optional[int] = None

    def with_cs(self, max_skip_count: int) -> "ExperimentConfig":
        """Copy with a different ``C_s`` threshold."""
        return replace(self, max_skip_count=max_skip_count)

    def with_loads(self, loads: Sequence[float]) -> "ExperimentConfig":
        """Copy with a different load sweep."""
        return replace(self, loads=tuple(loads))

    def with_algorithms(self, algorithms: Sequence[str]) -> "ExperimentConfig":
        """Copy comparing a different algorithm set."""
        return replace(self, algorithms=tuple(algorithms))

    def scaled(self, n_jobs: int, loads: Optional[Sequence[float]] = None) -> "ExperimentConfig":
        """Copy at reduced scale (fast benchmark/CI runs)."""
        generator = replace(self.generator, n_jobs=n_jobs)
        out = replace(self, generator=generator)
        if loads is not None:
            out = out.with_loads(loads)
        return out


__all__ = ["ExperimentConfig"]
