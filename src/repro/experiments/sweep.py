"""Parameter sweeps: run several algorithms over calibrated workloads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.registry import make_scheduler
from repro.experiments.calibrate import calibrate_beta_arr
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import SimulationRunner
from repro.metrics.records import RunMetrics
from repro.workload.generator import Workload


@dataclass
class SweepResult:
    """All runs of one sweep, aligned by sweep point.

    Attributes:
        sweep_label: Name of the swept variable.
        sweep_values: Realized x-axis values (e.g. achieved loads).
        series: algorithm -> per-point :class:`RunMetrics`.
    """

    sweep_label: str
    sweep_values: List[float]
    series: Dict[str, List[RunMetrics]] = field(default_factory=dict)

    def metric_series(self, algorithm: str, metric: str) -> List[float]:
        """One algorithm's values of ``metric`` across the sweep."""
        return [getattr(run, metric) for run in self.series[algorithm]]

    def rows(self) -> Dict[str, List[Dict[str, float]]]:
        """algorithm -> list of flat metric dicts (report formatting)."""
        return {
            name: [run.as_row() for run in runs] for name, runs in self.series.items()
        }


def run_algorithms(
    workload: Workload,
    algorithms: Sequence[str],
    *,
    max_skip_count: int = 7,
    lookahead: Optional[int] = 50,
    max_eccs_per_job: Optional[int] = None,
) -> Dict[str, RunMetrics]:
    """Run every algorithm on the *same* workload instance.

    Each run gets fresh job copies (the workload is immutable input),
    so the comparison is paired — identical arrivals, sizes, runtimes
    and ECCs for every policy, as in the paper's methodology.
    """
    results: Dict[str, RunMetrics] = {}
    for name in algorithms:
        scheduler = make_scheduler(
            name, max_skip_count=max_skip_count, lookahead=lookahead
        )
        runner = SimulationRunner(
            workload, scheduler, max_eccs_per_job=max_eccs_per_job
        )
        results[name] = runner.run()
    return results


def load_sweep(config: ExperimentConfig) -> SweepResult:
    """Figures 7–10 style sweep: metrics vs offered load.

    For each target load, calibrates ``β_arr`` (per-point seed), then
    runs every algorithm on the calibrated workload.
    """
    result = SweepResult(sweep_label="Load", sweep_values=[])
    for index, target in enumerate(config.loads):
        calibration = calibrate_beta_arr(
            config.generator, target, seed=config.seed + index
        )
        result.sweep_values.append(round(calibration.achieved_load, 4))
        point = run_algorithms(
            calibration.workload,
            config.algorithms,
            max_skip_count=config.max_skip_count,
            lookahead=config.lookahead,
            max_eccs_per_job=config.max_eccs_per_job,
        )
        for name, metrics in point.items():
            result.series.setdefault(name, []).append(metrics)
    return result


def cs_sweep(config: ExperimentConfig, cs_values: Sequence[int], target_load: float) -> SweepResult:
    """Figures 5–6 style sweep: metrics vs the ``C_s`` threshold.

    One workload is calibrated to ``target_load`` and *reused* across
    all ``C_s`` values (only Delayed-LOS reacts to ``C_s``; EASY/LOS
    provide flat reference lines, as in the figures).
    """
    calibration = calibrate_beta_arr(config.generator, target_load, seed=config.seed)
    result = SweepResult(sweep_label="C_s", sweep_values=[float(v) for v in cs_values])
    for cs in cs_values:
        point = run_algorithms(
            calibration.workload,
            config.algorithms,
            max_skip_count=cs,
            lookahead=config.lookahead,
            max_eccs_per_job=config.max_eccs_per_job,
        )
        for name, metrics in point.items():
            result.series.setdefault(name, []).append(metrics)
    return result


def arrival_scale_sweep(
    base_workload: Workload,
    algorithms: Sequence[str],
    scale_factors: Sequence[float],
    *,
    max_skip_count: int = 7,
    lookahead: Optional[int] = 50,
) -> SweepResult:
    """Figure 1 style sweep: load varied by scaling arrival times.

    This is the methodology of [7] §4.1 that the paper replicates for
    validation: multiply every arrival time by a constant factor
    (> 1 lowers load) and re-run.
    """
    result = SweepResult(sweep_label="Load", sweep_values=[])
    for factor in scale_factors:
        workload = base_workload.scale_arrivals(factor)
        result.sweep_values.append(round(workload.offered_load(), 4))
        point = run_algorithms(
            workload,
            algorithms,
            max_skip_count=max_skip_count,
            lookahead=lookahead,
        )
        for name, metrics in point.items():
            result.series.setdefault(name, []).append(metrics)
    return result


__all__ = ["SweepResult", "arrival_scale_sweep", "cs_sweep", "load_sweep", "run_algorithms"]
