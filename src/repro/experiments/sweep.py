"""Parameter sweeps: run several algorithms over calibrated workloads.

All sweeps dispatch their runs through
:mod:`repro.experiments.parallel`, so independent (algorithm ×
sweep-point) simulations fan out over worker processes and previously
simulated runs come back from the run cache.  Results are identical to
a serial loop by construction — specs are expanded in deterministic
order and collected by index.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.cache import RunCache
from repro.experiments.calibrate import calibrate_beta_arr
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import RunSpec, execute_runs, parallel_map
from repro.faults.model import FaultConfig, RetryPolicy
from repro.metrics.records import RunMetrics
from repro.obs.progress import ProgressEvent
from repro.workload.generator import Workload


@dataclass
class SweepResult:
    """All runs of one sweep, aligned by sweep point.

    Attributes:
        sweep_label: Name of the swept variable.
        sweep_values: Realized x-axis values (e.g. achieved loads).
        series: algorithm -> per-point :class:`RunMetrics`.
    """

    sweep_label: str
    sweep_values: List[float]
    series: Dict[str, List[RunMetrics]] = field(default_factory=dict)

    def metric_series(self, algorithm: str, metric: str) -> List[float]:
        """One algorithm's values of ``metric`` across the sweep."""
        return [getattr(run, metric) for run in self.series[algorithm]]

    def rows(self) -> Dict[str, List[Dict[str, float]]]:
        """algorithm -> list of flat metric dicts (report formatting)."""
        return {
            name: [run.as_row() for run in runs] for name, runs in self.series.items()
        }


def run_algorithms(
    workload: Workload,
    algorithms: Sequence[str],
    *,
    max_skip_count: int = 7,
    lookahead: Optional[int] = 50,
    max_eccs_per_job: Optional[int] = None,
    faults: Optional[FaultConfig] = None,
    retry: Optional[RetryPolicy] = None,
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
    trace_out: Optional[Mapping[str, str]] = None,
    spans_out: Optional[Mapping[str, str]] = None,
    decisions: bool = False,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
    manifest: Optional[object] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_seconds: Optional[float] = None,
) -> Dict[str, RunMetrics]:
    """Run every algorithm on the *same* workload instance.

    Each run gets fresh job copies (the workload is immutable input),
    so the comparison is paired — identical arrivals, sizes, runtimes
    and ECCs for every policy, as in the paper's methodology; under
    ``faults`` every policy also faces the *same* seeded fault model.
    Runs are dispatched through the parallel executor; ``jobs=1`` (or
    ``REPRO_JOBS=1``) forces the deterministic serial path, which
    produces identical metrics.

    Observability (docs/observability.md): ``trace_out`` maps
    algorithm names to JSONL trace paths — algorithms absent from the
    mapping run untraced, and traced runs produce identical metrics to
    untraced ones.  ``spans_out`` likewise maps algorithm names to
    Chrome trace-event JSON paths and turns on the phase-span profiler
    for those runs (docs/performance.md); ``decisions`` records
    per-job pass-over provenance in each trace.  ``progress`` receives
    a :class:`~repro.obs.progress.ProgressEvent` per resolved run.

    Durability (docs/resilience.md): ``manifest`` (a
    :class:`~repro.durable.manifest.SweepManifest` or path) records
    per-algorithm completion so a killed sweep re-runs only the
    remainder; ``checkpoint_dir`` additionally checkpoints each run
    *within* itself — every algorithm gets its own subdirectory, and
    an interrupted run resumes mid-simulation on the next invocation.
    """
    specs = [
        RunSpec(
            workload=workload,
            algorithm=name,
            max_skip_count=max_skip_count,
            lookahead=lookahead,
            max_eccs_per_job=max_eccs_per_job,
            faults=faults,
            retry=retry,
            trace_out=None if trace_out is None else trace_out.get(name),
            spans_out=None if spans_out is None else spans_out.get(name),
            decisions=decisions,
            checkpoint_dir=(
                None if checkpoint_dir is None
                else os.path.join(checkpoint_dir, name)
            ),
            checkpoint_every=checkpoint_every,
            checkpoint_seconds=checkpoint_seconds,
        )
        for name in algorithms
    ]
    metrics = execute_runs(
        specs, jobs=jobs, cache=cache, progress=progress, manifest=manifest
    )
    return dict(zip(algorithms, metrics))


def _load_point(
    task: Tuple[ExperimentConfig, float, int],
) -> Tuple[float, Dict[str, RunMetrics]]:
    """Calibrate and simulate one load-sweep point (worker-side)."""
    config, target, seed = task
    calibration = calibrate_beta_arr(config.generator, target, seed=seed)
    point = run_algorithms(
        calibration.workload,
        config.algorithms,
        max_skip_count=config.max_skip_count,
        lookahead=config.lookahead,
        max_eccs_per_job=config.max_eccs_per_job,
    )
    return round(calibration.achieved_load, 4), point


def load_sweep(
    config: ExperimentConfig,
    *,
    jobs: Optional[int] = None,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
) -> SweepResult:
    """Figures 7–10 style sweep: metrics vs offered load.

    For each target load, calibrates ``β_arr`` (per-point seed), then
    runs every algorithm on the calibrated workload.  Points are
    independent (own seed, own calibration), so whole points — the
    calibration bisection included — fan out across workers.
    ``progress`` reports at sweep-point granularity (one event per
    calibrated point, not per inner run).
    """
    tasks = [
        (config, target, config.seed + index)
        for index, target in enumerate(config.loads)
    ]
    work_hint = len(tasks) * config.generator.n_jobs * len(config.algorithms)
    points = parallel_map(
        _load_point, tasks, jobs=jobs, work_hint=work_hint, progress=progress
    )
    result = SweepResult(sweep_label="Load", sweep_values=[])
    for achieved, point in points:
        result.sweep_values.append(achieved)
        for name, metrics in point.items():
            result.series.setdefault(name, []).append(metrics)
    return result


def cs_sweep(
    config: ExperimentConfig,
    cs_values: Sequence[int],
    target_load: float,
    *,
    jobs: Optional[int] = None,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
) -> SweepResult:
    """Figures 5–6 style sweep: metrics vs the ``C_s`` threshold.

    One workload is calibrated to ``target_load`` and *reused* across
    all ``C_s`` values (only Delayed-LOS reacts to ``C_s``; EASY/LOS
    provide flat reference lines, as in the figures).  The whole
    (C_s × algorithm) grid is dispatched as one batch.
    """
    calibration = calibrate_beta_arr(config.generator, target_load, seed=config.seed)
    specs = [
        RunSpec(
            workload=calibration.workload,
            algorithm=name,
            max_skip_count=cs,
            lookahead=config.lookahead,
            max_eccs_per_job=config.max_eccs_per_job,
        )
        for cs in cs_values
        for name in config.algorithms
    ]
    metrics = execute_runs(specs, jobs=jobs, progress=progress)
    result = SweepResult(sweep_label="C_s", sweep_values=[float(v) for v in cs_values])
    for spec, run in zip(specs, metrics):
        result.series.setdefault(spec.algorithm, []).append(run)
    return result


def arrival_scale_sweep(
    base_workload: Workload,
    algorithms: Sequence[str],
    scale_factors: Sequence[float],
    *,
    max_skip_count: int = 7,
    lookahead: Optional[int] = 50,
    jobs: Optional[int] = None,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
) -> SweepResult:
    """Figure 1 style sweep: load varied by scaling arrival times.

    This is the methodology of [7] §4.1 that the paper replicates for
    validation: multiply every arrival time by a constant factor
    (> 1 lowers load) and re-run.  Scaled workloads are derived up
    front (cheap), then all (factor × algorithm) runs go out as one
    batch.
    """
    result = SweepResult(sweep_label="Load", sweep_values=[])
    specs: List[RunSpec] = []
    for factor in scale_factors:
        workload = base_workload.scale_arrivals(factor)
        result.sweep_values.append(round(workload.offered_load(), 4))
        specs.extend(
            RunSpec(
                workload=workload,
                algorithm=name,
                max_skip_count=max_skip_count,
                lookahead=lookahead,
            )
            for name in algorithms
        )
    metrics = execute_runs(specs, jobs=jobs, progress=progress)
    for spec, run in zip(specs, metrics):
        result.series.setdefault(spec.algorithm, []).append(run)
    return result


__all__ = ["SweepResult", "arrival_scale_sweep", "cs_sweep", "load_sweep", "run_algorithms"]
