"""Content-addressed cache of simulation runs.

A simulation is a pure function of its inputs: the workload content
(jobs, ECCs, machine), the scheduler (name + knobs) and the package
version.  :class:`RunCache` keys a :class:`~repro.metrics.records.RunMetrics`
on a SHA-256 digest of exactly those inputs and persists it under
``.repro_cache/``, so re-running a figure with one changed algorithm
only simulates the delta and a full re-run of an unchanged benchmark
is pure cache reads.

Invalidation is automatic by construction: any change to the workload
draw, a scheduler knob, or the package version changes the digest and
misses.  Stale entries are never wrong, only unused; ``clear()`` (or
``rm -rf .repro_cache``) reclaims the space.

The cache is disabled by default so unit tests and ad-hoc runs stay
side-effect free; opt in with ``REPRO_CACHE=1`` (directory override:
``REPRO_CACHE_DIR``) or by passing an explicit :class:`RunCache`.
Entries are checksummed containers (:mod:`repro.durable.atomic`)
written atomically (temp file + fsync + rename), so concurrent writers
— the parallel executor's workers — cannot corrupt each other and a
torn or bit-rotted entry is detected on read and treated as a miss
with a warning, never a crash.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.durable.atomic import checksummed_read, checksummed_write
from repro.faults.model import FaultConfig, RetryPolicy
from repro.metrics.records import RunMetrics
from repro.workload.generator import Workload

#: Schema tag of on-disk cache entries; readers reject others.
CACHE_MAGIC = "repro.cache-entry/1"

#: Environment switch: ``REPRO_CACHE=1`` enables the on-disk cache.
ENV_CACHE = "REPRO_CACHE"
#: Environment override for the cache directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
#: Default cache location, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

_TRUTHY = {"1", "true", "yes", "on"}


def workload_digest(workload: Workload) -> str:
    """Stable hex digest of a workload's simulation-relevant content.

    Covers every field a run's outcome can depend on — job attributes,
    ECC commands, machine size and granularity — and deliberately skips
    the cosmetic ``description``.  Two workloads with identical content
    therefore share cache entries regardless of how they were produced.
    """
    hasher = hashlib.sha256()
    hasher.update(f"M={workload.machine_size};g={workload.granularity}".encode())
    for job in workload.jobs:
        hasher.update(
            repr(
                (
                    job.job_id,
                    job.submit,
                    job.num,
                    job.original_estimate,
                    job.actual,
                    job.kind.value,
                    job.requested_start,
                    job.cancel_at,
                )
            ).encode()
        )
        if job.is_malleable:
            # Appended only for malleable jobs so every pre-existing
            # (all-rigid) workload keeps its digest — and its cache
            # entries — byte-for-byte.
            hasher.update(
                repr((job.min_procs, job.pref_procs, job.max_procs)).encode()
            )
    for ecc in workload.eccs:
        hasher.update(
            repr((ecc.job_id, ecc.issue_time, ecc.kind.value, ecc.amount)).encode()
        )
    return hasher.hexdigest()


def run_key(
    workload: Workload,
    algorithm: str,
    *,
    max_skip_count: int = 7,
    lookahead: Optional[int] = 50,
    max_eccs_per_job: Optional[int] = None,
    faults: Optional[FaultConfig] = None,
    retry: Optional[RetryPolicy] = None,
    version: Optional[str] = None,
) -> str:
    """Digest identifying one (workload, scheduler, version) run.

    ``faults``/``retry`` enter the digest only when set, so fault-free
    digests are unchanged from earlier versions of this function.
    """
    if version is None:
        from repro import __version__ as version
    hasher = hashlib.sha256()
    hasher.update(workload_digest(workload).encode())
    hasher.update(
        repr((algorithm, max_skip_count, lookahead, max_eccs_per_job, version)).encode()
    )
    if faults is not None or retry is not None:
        hasher.update(repr((faults, retry)).encode())
    return hasher.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters of one :class:`RunCache` instance.

    >>> stats = CacheStats(hits=3, misses=1, stores=1)
    >>> stats.lookups, round(stats.hit_rate, 2)
    (4, 0.75)
    >>> print(stats)
    cache: 3 hits, 1 misses (75% hit rate), 1 stores
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls that reached an enabled cache."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when none)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __str__(self) -> str:
        rate = f" ({self.hit_rate:.0%} hit rate)" if self.lookups else ""
        return (
            f"cache: {self.hits} hits, {self.misses} misses{rate}, "
            f"{self.stores} stores"
        )


@dataclass
class RunCache:
    """Pickle-backed run cache keyed by :func:`run_key` digests.

    Attributes:
        root: Cache directory (created lazily on first store).
        enabled: When False, every lookup misses and stores are no-ops;
            the executor then behaves exactly as if no cache existed.
    """

    root: Union[str, Path] = DEFAULT_CACHE_DIR
    enabled: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls) -> "RunCache":
        """Cache configured from ``REPRO_CACHE`` / ``REPRO_CACHE_DIR``."""
        enabled = os.environ.get(ENV_CACHE, "").strip().lower() in _TRUTHY
        root = os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR
        return cls(root=root, enabled=enabled)

    @classmethod
    def disabled(cls) -> "RunCache":
        """A cache that never hits and never writes."""
        return cls(enabled=False)

    # ------------------------------------------------------------------
    def key(
        self,
        workload: Workload,
        algorithm: str,
        *,
        max_skip_count: int = 7,
        lookahead: Optional[int] = 50,
        max_eccs_per_job: Optional[int] = None,
        faults: Optional[FaultConfig] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> str:
        """Digest for one run under this cache's versioning."""
        return run_key(
            workload,
            algorithm,
            max_skip_count=max_skip_count,
            lookahead=lookahead,
            max_eccs_per_job=max_eccs_per_job,
            faults=faults,
            retry=retry,
        )

    def _path(self, key: str) -> Path:
        # Two-level fan-out keeps directory listings manageable for
        # large sweeps (a full grid easily stores thousands of runs).
        return Path(self.root) / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[RunMetrics]:
        """Cached metrics for ``key``, or None on a miss.

        A corrupt or unreadable entry (killed writer, bit rot, version
        skew in pickled classes) is treated as a miss — with a
        ``RuntimeWarning`` naming the file — never an error.
        """
        if not self.enabled:
            return None
        path = self._path(key)
        try:
            _header, payload = checksummed_read(path, magic=CACHE_MAGIC)
            metrics = pickle.loads(payload)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            # Checksum/magic mismatches are CorruptFileError; unpickling
            # arbitrary corruption can raise nearly anything beyond that
            # (UnpicklingError, EOFError, ValueError from bad opcodes,
            # AttributeError/ImportError from version skew, OSError...).
            warnings.warn(
                f"{path}: discarding unreadable cache entry (treated as a miss)",
                RuntimeWarning,
                stacklevel=2,
            )
            self.stats.misses += 1
            return None
        if not isinstance(metrics, RunMetrics):
            self.stats.misses += 1
            return None
        # Schema check: an entry pickled by an older RunMetrics (its
        # __dict__ simply lacks fields added since) must be a miss, not
        # a half-initialized object crashing a report downstream.  The
        # instance dict is checked, not hasattr: class-level dataclass
        # defaults would mask a missing field.
        state = getattr(metrics, "__dict__", {})
        if any(f.name not in state for f in dataclasses.fields(RunMetrics)):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return metrics

    def put(self, key: str, metrics: RunMetrics) -> None:
        """Persist ``metrics`` under ``key`` (atomic, last writer wins)."""
        if not self.enabled:
            return
        checksummed_write(
            self._path(key),
            pickle.dumps(metrics, protocol=pickle.HIGHEST_PROTOCOL),
            magic=CACHE_MAGIC,
        )
        self.stats.stores += 1

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        root = Path(self.root)
        if not root.is_dir():
            return 0
        removed = 0
        for entry in root.glob("*/*.pkl"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        root = Path(self.root)
        if not root.is_dir():
            return 0
        return sum(1 for _ in root.glob("*/*.pkl"))


__all__ = [
    "CACHE_MAGIC",
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "ENV_CACHE",
    "ENV_CACHE_DIR",
    "RunCache",
    "run_key",
    "workload_digest",
]
