"""Multi-seed replication of sweeps.

The paper plots a *single* simulation run per point ("each point ...
corresponds to a single simulation run with a total of N_J = 500
jobs") and notes that 10 000-job runs did not change the picture.  For
a reproduction it is worth quantifying the run-to-run spread, so this
module replicates a sweep across seeds and aggregates mean ±
half-width of a normal-approximation confidence interval per point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.experiments.parallel import parallel_map
from repro.experiments.sweep import SweepResult

#: z-scores for the confidence levels we expose.
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class AggregatedPoint:
    """Mean and confidence half-width of one metric at one sweep point."""

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4g} ± {self.half_width:.2g}"


@dataclass
class ReplicatedSweep:
    """Aggregate of several same-shape :class:`SweepResult` replicas.

    Attributes:
        sweep_label: Name of the swept variable.
        sweep_values: Mean realized x-values across replicas.
        replicas: The underlying per-seed sweeps.
    """

    sweep_label: str
    sweep_values: List[float]
    replicas: List[SweepResult] = field(default_factory=list)

    def aggregate(
        self, algorithm: str, metric: str, confidence: float = 0.95
    ) -> List[AggregatedPoint]:
        """Per-point mean ± CI half-width of ``metric`` for ``algorithm``."""
        try:
            z = _Z[confidence]
        except KeyError:
            raise ValueError(
                f"confidence must be one of {sorted(_Z)}, got {confidence}"
            ) from None
        points: List[AggregatedPoint] = []
        n_points = len(self.sweep_values)
        for index in range(n_points):
            samples = [
                replica.metric_series(algorithm, metric)[index]
                for replica in self.replicas
            ]
            n = len(samples)
            mean = sum(samples) / n
            if n > 1:
                variance = sum((s - mean) ** 2 for s in samples) / (n - 1)
                half = z * math.sqrt(variance / n)
            else:
                half = 0.0
            points.append(AggregatedPoint(mean=mean, half_width=half, n=n))
        return points

    def algorithms(self) -> List[str]:
        """Algorithms present in every replica."""
        if not self.replicas:
            return []
        names = set(self.replicas[0].series)
        for replica in self.replicas[1:]:
            names &= set(replica.series)
        return sorted(names)

    def significant_gap(
        self, better: str, worse: str, metric: str, confidence: float = 0.95
    ) -> bool:
        """Whether ``better`` beats ``worse`` with non-overlapping CIs
        on the sweep-mean of a lower-is-better ``metric``."""
        b = self.aggregate(better, metric, confidence)
        w = self.aggregate(worse, metric, confidence)
        b_mean = sum(p.mean for p in b) / len(b)
        b_half = sum(p.half_width for p in b) / len(b)
        w_mean = sum(p.mean for p in w) / len(w)
        w_half = sum(p.half_width for p in w) / len(w)
        return b_mean + b_half < w_mean - w_half


def replicate_sweep(
    run_one: Callable[[int], SweepResult],
    seeds: Sequence[int],
    *,
    jobs: Optional[int] = None,
) -> ReplicatedSweep:
    """Run ``run_one(seed)`` for every seed and aggregate.

    All replicas must share the sweep label and point count; realized
    x-values (e.g. achieved loads) may differ slightly per seed and are
    averaged.  Replicas are independent, so they fan out over worker
    processes when ``run_one`` is picklable (a module-level function);
    closures fall back to the serial loop transparently.

    Raises:
        ValueError: on empty seeds or mismatched replica shapes.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    replicas = parallel_map(run_one, list(seeds), jobs=jobs)
    first = replicas[0]
    for replica in replicas[1:]:
        if replica.sweep_label != first.sweep_label or len(
            replica.sweep_values
        ) != len(first.sweep_values):
            raise ValueError("replicas have mismatched sweep shapes")
    n_points = len(first.sweep_values)
    mean_values = [
        sum(replica.sweep_values[i] for replica in replicas) / len(replicas)
        for i in range(n_points)
    ]
    return ReplicatedSweep(
        sweep_label=first.sweep_label,
        sweep_values=mean_values,
        replicas=replicas,
    )


def format_replicated(
    replicated: ReplicatedSweep,
    metric: str,
    confidence: float = 0.95,
) -> str:
    """Tabular report: sweep value × algorithm, mean ± CI half-width."""
    from repro.metrics.report import format_table

    algorithms = replicated.algorithms()
    headers = [replicated.sweep_label] + algorithms
    aggregates: Dict[str, List[AggregatedPoint]] = {
        name: replicated.aggregate(name, metric, confidence) for name in algorithms
    }
    rows = []
    for index, x in enumerate(replicated.sweep_values):
        row: List[object] = [round(x, 4)]
        for name in algorithms:
            row.append(str(aggregates[name][index]))
        rows.append(row)
    title = (
        f"{metric} (mean ± {int(confidence * 100)}% CI over "
        f"{len(replicated.replicas)} seeds)"
    )
    return f"{title}\n" + format_table(headers, rows)


__all__ = [
    "AggregatedPoint",
    "ReplicatedSweep",
    "format_replicated",
    "replicate_sweep",
]
