"""One entry point per paper figure (§V).

Each ``figure_*`` function accepts a scale override (``n_jobs``,
sweep density) so the same definition powers both the full
reproduction (paper scale: 500 jobs per point) and fast benchmark/CI
runs.  Each returns a :class:`~repro.experiments.sweep.SweepResult`
whose series the benchmark harness prints and checks.

Paper parameters per figure:

====  =====================================================  =========
Fig.  Setup                                                  C_s
====  =====================================================  =========
 1    SDSC-like log, EASY vs LOS, load via arrival scaling    —
 5    batch, Load=0.9, P_S=0.5, C_s ∈ [1, 20]                 swept
 6    batch, Load=0.9, P_S=0.8, C_s ∈ [1, 20]                 swept
 7    batch, P_S=0.2, Load ∈ [0.5, 1]                         tuned
 8    batch, P_S ∈ {0.5, 0.8}, Load ∈ [0.5, 1]                tuned
 9    heterogeneous, P_D=0.5, P_S=0.2, Load ∈ [0.5, 1]        tuned
 10   heterogeneous, P_D=0.9, P_S=0.5, Load ∈ [0.5, 1]        tuned
 11   elastic (P_E=0.2, P_R=0.1): batch P_S=0.5 and           tuned
      heterogeneous P_S=P_D=0.5, Load ∈ [0.5, 1]
====  =====================================================  =========

``C_s`` "tuned": the paper empirically picks the optimal C_s per
``P_S`` before each load sweep; :func:`tuned_cs` reproduces that
rule of thumb (≈7 for P_S ≤ 0.5, ≈3 for small-job-heavy mixes),
matching the knees of Figures 5–6.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.sweep import (
    SweepResult,
    arrival_scale_sweep,
    cs_sweep,
    load_sweep,
)
from repro.workload.generator import GeneratorConfig
from repro.workload.sdsc import generate_sdsc_like
from repro.workload.twostage import TwoStageSizeConfig

#: Load sweep of §V (Figures 7-10): "increasing Load in the interval
#: [0.5, 1]".
PAPER_LOADS: Tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

#: C_s sweep of Figures 5-6.
PAPER_CS_VALUES: Tuple[int, ...] = tuple(range(1, 21))

BATCH_ALGORITHMS: Tuple[str, ...] = ("EASY", "LOS", "Delayed-LOS")
HETERO_ALGORITHMS: Tuple[str, ...] = ("EASY-D", "LOS-D", "Hybrid-LOS")
ELASTIC_BATCH_ALGORITHMS: Tuple[str, ...] = ("EASY-E", "LOS-E", "Delayed-LOS-E")
ELASTIC_HETERO_ALGORITHMS: Tuple[str, ...] = ("EASY-DE", "LOS-DE", "Hybrid-LOS-E")


def tuned_cs(p_small: float) -> int:
    """Empirical optimal ``C_s`` per ``P_S`` (Figures 5–6 knees)."""
    return 3 if p_small >= 0.7 else 7


def _batch_config(
    p_small: float,
    n_jobs: int,
    loads: Sequence[float],
    seed: int,
    algorithms: Tuple[str, ...] = BATCH_ALGORITHMS,
    p_dedicated: float = 0.0,
    p_extend: float = 0.0,
    p_reduce: float = 0.0,
) -> ExperimentConfig:
    generator = GeneratorConfig(
        n_jobs=n_jobs,
        size=TwoStageSizeConfig(p_small=p_small),
        p_dedicated=p_dedicated,
        p_extend=p_extend,
        p_reduce=p_reduce,
    )
    return ExperimentConfig(
        generator=generator,
        algorithms=algorithms,
        max_skip_count=tuned_cs(p_small),
        loads=tuple(loads),
        seed=seed,
    )


# ----------------------------------------------------------------------
# Figure 1 — validation of LOS > EASY on an SDSC-like log
# ----------------------------------------------------------------------
def figure1(
    n_jobs: int = 500,
    scale_factors: Sequence[float] = (1.6, 1.4, 1.25, 1.1, 1.0),
    seed: int = 1,
) -> SweepResult:
    """EASY vs LOS on the SDSC-like trace, load via arrival scaling."""
    rng = np.random.default_rng(seed)
    base = generate_sdsc_like(n_jobs, rng)
    return arrival_scale_sweep(base, ("EASY", "LOS"), scale_factors)


# ----------------------------------------------------------------------
# Figures 5 and 6 — C_s sweeps
# ----------------------------------------------------------------------
def figure5(
    n_jobs: int = 500,
    cs_values: Sequence[int] = PAPER_CS_VALUES,
    load: float = 0.9,
    seed: int = 5,
) -> SweepResult:
    """Metrics vs C_s at Load=0.9, P_S=0.5."""
    config = _batch_config(0.5, n_jobs, PAPER_LOADS, seed)
    return cs_sweep(config, cs_values, target_load=load)


def figure6(
    n_jobs: int = 500,
    cs_values: Sequence[int] = PAPER_CS_VALUES,
    load: float = 0.9,
    seed: int = 6,
) -> SweepResult:
    """Metrics vs C_s at Load=0.9, P_S=0.8 (small-job-heavy)."""
    config = _batch_config(0.8, n_jobs, PAPER_LOADS, seed)
    return cs_sweep(config, cs_values, target_load=load)


# ----------------------------------------------------------------------
# Figures 7 and 8 — batch load sweeps
# ----------------------------------------------------------------------
def figure7(
    n_jobs: int = 500,
    loads: Sequence[float] = PAPER_LOADS,
    seed: int = 7,
) -> SweepResult:
    """Metrics vs Load at P_S=0.2 (large-job-heavy: LOS loses to EASY)."""
    return load_sweep(_batch_config(0.2, n_jobs, loads, seed))


def figure8(
    n_jobs: int = 500,
    loads: Sequence[float] = PAPER_LOADS,
    seed: int = 8,
) -> Dict[str, SweepResult]:
    """Waiting time vs Load for P_S=0.5 and P_S=0.8."""
    return {
        "P_S=0.5": load_sweep(_batch_config(0.5, n_jobs, loads, seed)),
        "P_S=0.8": load_sweep(_batch_config(0.8, n_jobs, loads, seed + 100)),
    }


# ----------------------------------------------------------------------
# Figures 9 and 10 — heterogeneous load sweeps
# ----------------------------------------------------------------------
def figure9(
    n_jobs: int = 500,
    loads: Sequence[float] = PAPER_LOADS,
    seed: int = 9,
) -> SweepResult:
    """Heterogeneous metrics vs Load at P_D=0.5, P_S=0.2."""
    config = _batch_config(
        0.2, n_jobs, loads, seed, algorithms=HETERO_ALGORITHMS, p_dedicated=0.5
    )
    return load_sweep(config)


def figure10(
    n_jobs: int = 500,
    loads: Sequence[float] = PAPER_LOADS,
    seed: int = 10,
) -> SweepResult:
    """Heterogeneous metrics vs Load at P_D=0.9, P_S=0.5."""
    config = _batch_config(
        0.5, n_jobs, loads, seed, algorithms=HETERO_ALGORITHMS, p_dedicated=0.9
    )
    return load_sweep(config)


# ----------------------------------------------------------------------
# Figure 11 — elastic workloads (ECCs)
# ----------------------------------------------------------------------
def figure11(
    n_jobs: int = 500,
    loads: Sequence[float] = PAPER_LOADS,
    seed: int = 11,
    p_extend: float = 0.2,
    p_reduce: float = 0.1,
) -> Dict[str, SweepResult]:
    """Elastic batch (P_S=0.5) and heterogeneous (P_S=P_D=0.5) sweeps."""
    batch = _batch_config(
        0.5,
        n_jobs,
        loads,
        seed,
        algorithms=ELASTIC_BATCH_ALGORITHMS,
        p_extend=p_extend,
        p_reduce=p_reduce,
    )
    hetero = _batch_config(
        0.5,
        n_jobs,
        loads,
        seed + 100,
        algorithms=ELASTIC_HETERO_ALGORITHMS,
        p_dedicated=0.5,
        p_extend=p_extend,
        p_reduce=p_reduce,
    )
    return {"batch": load_sweep(batch), "heterogeneous": load_sweep(hetero)}


__all__ = [
    "BATCH_ALGORITHMS",
    "ELASTIC_BATCH_ALGORITHMS",
    "ELASTIC_HETERO_ALGORITHMS",
    "HETERO_ALGORITHMS",
    "PAPER_CS_VALUES",
    "PAPER_LOADS",
    "figure1",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "tuned_cs",
]
