"""Reproduction-fidelity scoring.

Quantifies how well measured improvement tables agree with the paper's
(Tables IV–VII), operationalizing the reproduction criterion stated in
DESIGN.md: *shape over absolute numbers*.

Two scores per comparison:

- **sign agreement** — fraction of (metric, baseline) cells where the
  measured improvement has the same sign as the paper's (did the same
  algorithm win?);
- **magnitude ratio** — geometric mean of measured/paper improvement
  ratios over sign-agreeing positive cells (how big was the win,
  relative to the paper's?).  1.0 = identical magnitudes; 0.5 = our
  wins are half the paper's; ratios are clamped into [0.01, 100] so a
  single near-zero cell cannot dominate the geometric mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Mapping, Tuple

#: Clamp bounds for per-cell magnitude ratios.
RATIO_CLAMP = (0.01, 100.0)


@dataclass(frozen=True)
class FidelityScore:
    """Agreement between a measured and a paper-reported table."""

    cells: int
    sign_matches: int
    magnitude_ratio: float  # geometric mean over agreeing positive cells
    disagreements: Tuple[str, ...]  # "metric vs baseline" labels

    @property
    def sign_agreement(self) -> float:
        """Fraction of cells whose improvement sign matches the paper."""
        return self.sign_matches / self.cells if self.cells else 1.0

    def summary(self) -> str:
        """One-line human-readable verdict."""
        text = (
            f"fidelity: {self.sign_matches}/{self.cells} cells agree in sign "
            f"({self.sign_agreement:.0%}); magnitude ratio "
            f"{self.magnitude_ratio:.2f}x the paper's"
        )
        if self.disagreements:
            text += f"; disagreements: {', '.join(self.disagreements)}"
        return text


def score_fidelity(
    measured: Mapping[str, Mapping[str, float]],
    paper: Mapping[str, Mapping[str, float]],
) -> FidelityScore:
    """Score a measured improvement table against the paper's.

    Both tables map metric label -> {baseline -> max % improvement};
    cells present in only one table are ignored.

    Raises:
        ValueError: when the tables share no cells at all.
    """
    cells = 0
    matches = 0
    log_ratios: List[float] = []
    disagreements: List[str] = []
    for metric, paper_row in paper.items():
        measured_row = measured.get(metric)
        if measured_row is None:
            continue
        for baseline, paper_value in paper_row.items():
            if baseline not in measured_row:
                continue
            measured_value = measured_row[baseline]
            cells += 1
            same_sign = (
                (measured_value > 0 and paper_value > 0)
                or (measured_value < 0 and paper_value < 0)
                or (measured_value == paper_value == 0)
            )
            if same_sign:
                matches += 1
                if measured_value > 0 and paper_value > 0:
                    ratio = measured_value / paper_value
                    ratio = min(RATIO_CLAMP[1], max(RATIO_CLAMP[0], ratio))
                    log_ratios.append(math.log(ratio))
            else:
                disagreements.append(f"{metric} vs {baseline}")
    if cells == 0:
        raise ValueError("tables share no comparable cells")
    magnitude = math.exp(sum(log_ratios) / len(log_ratios)) if log_ratios else 0.0
    return FidelityScore(
        cells=cells,
        sign_matches=matches,
        magnitude_ratio=magnitude,
        disagreements=tuple(disagreements),
    )


__all__ = ["FidelityScore", "RATIO_CLAMP", "score_fidelity"]
