"""Parallel execution of independent simulation runs.

Every paper figure/table is a sweep of independent (algorithm ×
sweep-point × seed) simulations — embarrassingly parallel work.  This
module is the single choke point through which the sweep, grid,
replication and benchmark layers dispatch those runs:

- :class:`RunSpec` names one run declaratively (workload + scheduler
  knobs), so it can be pickled to a worker process or hashed into the
  run cache,
- :func:`execute_runs` fans a batch of specs out over a
  ``ProcessPoolExecutor``, consulting the :class:`~repro.experiments.cache.RunCache`
  first so only cache misses are simulated,
- :func:`parallel_map` is the same machinery for coarser units of work
  (one sweep point, one grid cell, one replica seed).

Determinism is the hard requirement: parallel and serial execution
produce bit-identical metrics for the same inputs.  Each run is an
isolated simulation seeded entirely by its spec, and results are
returned in submission order (``Executor.map`` semantics), never in
completion order.

Robustness (docs/resilience.md): a crashed worker process
(``BrokenProcessPool``) or a per-run wait exceeding
``REPRO_RUN_TIMEOUT`` does not abort the batch — the affected runs are
retried serially in the parent after a ``RuntimeWarning``, degrading
gracefully to the plain loop that parallelism merely accelerates.

Worker count resolution, in priority order: an explicit ``jobs=``
argument, the ``REPRO_JOBS`` environment variable, then
``os.cpu_count()``.  The serial path is used for ``jobs=1``, on
platforms without the ``fork`` start method (worker startup cost would
dwarf these millisecond-scale simulations under ``spawn``), and — when
the worker count was only implied — for batches too small to amortize
pool startup.  Workers pin ``REPRO_JOBS=1`` so nested calls never
oversubscribe the machine with pools-inside-pools.

Pool startup is amortized across batches: the first parallel batch
forks a **persistent warm pool** that later same-sized batches reuse
(``REPRO_WARM_POOL=0`` restores a fresh pool per batch), and
:func:`warm_pool` pre-forks it explicitly so benchmarks can report
spin-up separately (``pool_startup_s``).  The pool is discarded
whenever reuse could change behavior or hide a failure: any worker
crash or per-run timeout (the worker may still be executing the
abandoned task), a ``KeyboardInterrupt``, or a parent-side
environment change since the workers forked (forked children snapshot
``os.environ`` — a stale ``REPRO_NO_MEMO`` must not diverge workers
from the serial path).  Batches wider than the pool are submitted in
contiguous chunks (:data:`CHUNKS_PER_WORKER` per worker) so per-future
pickling and IPC amortize; a per-run ``REPRO_RUN_TIMEOUT`` forces
one-run-per-future so the bound keeps its meaning.
"""

from __future__ import annotations

import atexit
import os
import pickle
import time
import warnings
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import get_all_start_methods, get_context
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.core.registry import make_scheduler
from repro.experiments.cache import RunCache
from repro.experiments.runner import SimulationRunner
from repro.faults.model import FaultConfig, RetryPolicy
from repro.metrics.records import RunMetrics
from repro.obs.progress import ProgressEvent, ProgressTracker
from repro.workload.generator import Workload

#: Environment variable naming the worker count (CLI flag equivalent:
#: ``repro-sim --parallel N``).
ENV_JOBS = "REPRO_JOBS"

#: Optional per-run wait bound in seconds: when set, waiting on any
#: single worker-side run longer than this counts as a failure and the
#: run is retried serially in the parent.  Unset/non-positive = wait
#: forever (the default; simulations are deterministic and finite).
ENV_RUN_TIMEOUT = "REPRO_RUN_TIMEOUT"

#: When the worker count is merely implied (no ``jobs=``, no
#: ``REPRO_JOBS``), batches below this many *simulated* jobs run
#: serially: forking a pool costs more than it saves on tiny runs.
PARALLEL_MIN_WORK = 400

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class RunSpec:
    """One simulation run, fully specified by value.

    The spec carries everything :func:`execute_spec` needs to rebuild
    the scheduler and runner in another process, and everything the run
    cache needs to address the result.
    """

    workload: Workload
    algorithm: str
    max_skip_count: int = 7
    lookahead: Optional[int] = 50
    max_eccs_per_job: Optional[int] = None
    #: Optional fault model (docs/resilience.md); None = fault-free.
    faults: Optional[FaultConfig] = None
    #: Recovery policy under faults; None = RetryPolicy defaults.
    retry: Optional[RetryPolicy] = None
    #: Stream the run's trace to this JSONL path
    #: (docs/observability.md).  Deliberately **not** part of the run
    #: cache key: tracing never changes metrics.  A spec with a trace
    #: path is always simulated (never served from cache), so the file
    #: is actually produced; the result is still stored back.
    trace_out: Optional[str] = None
    #: Checkpoint this run into the given directory and, when a usable
    #: checkpoint is already there, resume from it instead of starting
    #: over (docs/resilience.md).  Like ``trace_out``, never part of
    #: the cache key — checkpointing never changes metrics (the resume
    #: oracle in ``tests/durable/`` enforces bitwise equality).
    checkpoint_dir: Optional[str] = None
    #: Checkpoint cadence in events (None = the durable layer default).
    checkpoint_every: Optional[int] = None
    #: Optional wall-clock cadence in seconds.
    checkpoint_seconds: Optional[float] = None
    #: Profile the run with phase spans and write a Chrome trace-event
    #: JSON file here (docs/performance.md).  Like ``trace_out``, never
    #: part of the cache key — spans are pure observation (the
    #: byte-identity tests enforce identical traces spans-on vs off) —
    #: and a spec asking for a spans file is always simulated so the
    #: file actually appears.
    spans_out: Optional[str] = None
    #: Enable aggregate-only phase spans (``span_*`` telemetry) without
    #: a Chrome export.  Implied by ``spans_out``.  Not part of the
    #: cache key; a spans-requesting spec is simulated (never served
    #: from cache) so the telemetry is actually present.
    spans: bool = False
    #: Record per-job pass-over ``decision`` records in the run's trace
    #: (docs/observability.md).  Only meaningful with ``trace_out``;
    #: not part of the cache key (decision provenance never changes
    #: metrics), and trace-requesting specs bypass the cache anyway.
    decisions: bool = False


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument > ``REPRO_JOBS`` > CPU count."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get(ENV_JOBS, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(f"{ENV_JOBS} must be an integer, got {env!r}") from None
    return max(1, os.cpu_count() or 1)


def fork_available() -> bool:
    """Whether the cheap ``fork`` start method exists on this platform."""
    return "fork" in get_all_start_methods()


def execute_spec(spec: RunSpec) -> RunMetrics:
    """Run one spec to completion (the worker-side entry point).

    A spec with ``checkpoint_dir`` runs under periodic checkpointing
    (:mod:`repro.durable.checkpoint`); when the directory already holds
    a usable checkpoint *of this exact spec* (run-key validated), the
    run resumes from it instead of restarting — an unusable or
    mismatched checkpoint demotes to a fresh run with a warning, and a
    completed run deletes its checkpoints (cache and manifest own the
    result from then on).

    With ``REPRO_TRACE_VALIDATE`` truthy, a traced run is re-checked by
    the observability oracle (:mod:`repro.obs.analytics`): the exported
    trace is read back, the paper metrics are recomputed from it, and a
    disagreement with the returned :class:`RunMetrics` raises
    :class:`~repro.obs.analytics.TraceOracleError`.
    """
    checkpoint = None
    runner: Optional[SimulationRunner] = None
    if spec.checkpoint_dir is not None:
        from repro.durable.checkpoint import (
            CheckpointConfig,
            CheckpointError,
            latest_checkpoint,
            load_checkpoint,
        )
        from repro.experiments.cache import run_key

        key = run_key(
            spec.workload,
            spec.algorithm,
            max_skip_count=spec.max_skip_count,
            lookahead=spec.lookahead,
            max_eccs_per_job=spec.max_eccs_per_job,
            faults=spec.faults,
            retry=spec.retry,
        )
        cadence = {}
        if spec.checkpoint_every is not None:
            cadence["every_events"] = spec.checkpoint_every
        checkpoint = CheckpointConfig(
            dir=spec.checkpoint_dir,
            every_seconds=spec.checkpoint_seconds,
            run_key=key,
            **cadence,
        )
        found = latest_checkpoint(spec.checkpoint_dir)
        if found is not None:
            try:
                runner = load_checkpoint(
                    found, trace_out=spec.trace_out, expect_run_key=key
                )
            except CheckpointError as exc:
                warnings.warn(
                    f"cannot resume from {found}: {exc}; restarting the run",
                    RuntimeWarning,
                    stacklevel=2,
                )
    if runner is None:
        scheduler = make_scheduler(
            spec.algorithm,
            max_skip_count=spec.max_skip_count,
            lookahead=spec.lookahead,
        )
        runner = SimulationRunner(
            spec.workload,
            scheduler,
            trace_out=spec.trace_out,
            max_eccs_per_job=spec.max_eccs_per_job,
            faults=spec.faults,
            retry=spec.retry,
            spans=spec.spans or spec.spans_out is not None,
            spans_out=spec.spans_out,
            decisions=spec.decisions,
        )
    metrics = runner.run(checkpoint=checkpoint)
    if checkpoint is not None:
        from repro.durable.checkpoint import list_checkpoints

        for stale in list_checkpoints(spec.checkpoint_dir):
            try:
                stale.unlink()
            except OSError:
                pass
    if spec.trace_out is not None and os.environ.get(
        "REPRO_TRACE_VALIDATE", ""
    ).strip().lower() in ("1", "true", "yes", "on"):
        from repro.obs.analytics import validate_trace_file

        validate_trace_file(spec.trace_out, metrics)
    return metrics


def _init_worker() -> None:
    # Nested parallelism is never a win here: the outer pool already
    # owns the cores.  Pin workers to serial execution.
    os.environ[ENV_JOBS] = "1"


def _run_chunk(fn: Callable[[T], R], chunk: Sequence[T]) -> List[R]:
    """Worker-side: run one submitted chunk of items in order."""
    return [fn(item) for item in chunk]


def _effective_workers(
    jobs: Optional[int], n_tasks: int, work_hint: Optional[int]
) -> int:
    """Workers to actually use for a batch of ``n_tasks`` tasks."""
    if n_tasks < 2 or not fork_available():
        return 1
    explicit = jobs is not None or bool(os.environ.get(ENV_JOBS, "").strip())
    if not explicit and work_hint is not None and work_hint < PARALLEL_MIN_WORK:
        return 1
    return min(resolve_jobs(jobs), n_tasks)


def _pool(workers: int) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(
        max_workers=workers,
        mp_context=get_context("fork"),
        initializer=_init_worker,
    )


# ----------------------------------------------------------------------
# Persistent warm pool (docs/performance.md)
# ----------------------------------------------------------------------
#: Kill switch for the persistent worker pool: "0"/"false"/"no"/"off"
#: restores the original fresh-pool-per-batch behavior.
ENV_WARM_POOL = "REPRO_WARM_POOL"

#: Chunked submission granularity: batches larger than the worker
#: count are submitted as ~this many chunks per worker, so per-task
#: pickling/IPC overhead amortizes while load still balances.
CHUNKS_PER_WORKER = 4

_warm_pool: Optional[ProcessPoolExecutor] = None
_warm_pool_workers = 0
_warm_pool_env: Optional[Dict[str, str]] = None
_warm_pool_atexit = False


def warm_pool_enabled() -> bool:
    """Whether batches reuse one persistent pool (:data:`ENV_WARM_POOL`)."""
    return os.environ.get(ENV_WARM_POOL, "").strip().lower() not in (
        "0", "false", "no", "off",
    )


def shutdown_warm_pool(wait: bool = False) -> None:
    """Discard the persistent pool (idempotent).

    Called automatically at interpreter exit, whenever a batch sees a
    worker crash or timeout (a timed-out task may still be running in
    its worker — the pool is poisoned for reuse), and whenever the
    parent's environment changed since the workers forked.
    """
    global _warm_pool, _warm_pool_workers, _warm_pool_env
    pool = _warm_pool
    _warm_pool = None
    _warm_pool_workers = 0
    _warm_pool_env = None
    if pool is not None:
        pool.shutdown(wait=wait, cancel_futures=True)


def _acquire_pool(workers: int) -> Tuple[ProcessPoolExecutor, bool]:
    """The pool for one batch: ``(pool, caller_owns_shutdown)``.

    With the warm pool enabled, an existing pool is reused when its
    size matches **and** the parent's environment is unchanged since
    its workers forked — forked workers snapshot ``os.environ``, so a
    parent-side change (``REPRO_NO_MEMO``, ``REPRO_TRACE_VALIDATE``,
    ...) silently diverging worker behavior from the serial path must
    recreate them.  A module-owned pool outlives the batch; the
    caller must call :func:`shutdown_warm_pool` instead of shutting it
    down when the batch poisoned it.
    """
    global _warm_pool, _warm_pool_workers, _warm_pool_env, _warm_pool_atexit
    if not warm_pool_enabled():
        return _pool(workers), True
    env = dict(os.environ)
    if (
        _warm_pool is not None
        and _warm_pool_workers == workers
        and _warm_pool_env == env
    ):
        return _warm_pool, False
    shutdown_warm_pool()
    _warm_pool = _pool(workers)
    _warm_pool_workers = workers
    _warm_pool_env = env
    if not _warm_pool_atexit:
        atexit.register(shutdown_warm_pool)
        _warm_pool_atexit = True
    return _warm_pool, False


def _worker_pid(_: object) -> int:
    return os.getpid()


def warm_pool(workers: Optional[int] = None) -> float:
    """Pre-fork the persistent pool; returns the spin-up seconds.

    Forks the pool's workers *now* (a round of no-op tasks forces the
    lazy executor to spawn every one), so a subsequent batch pays no
    startup cost inside its timed region.  Returns ``0.0`` when the
    right-sized pool is already warm or the warm pool is disabled —
    the benchmark records the return value as ``pool_startup_s``,
    separating amortizable spin-up from steady-state dispatch cost.
    """
    if not warm_pool_enabled() or not fork_available():
        return 0.0
    count = resolve_jobs(workers)
    if (
        _warm_pool is not None
        and _warm_pool_workers == count
        and _warm_pool_env == dict(os.environ)
    ):
        return 0.0
    started = time.perf_counter()
    pool, _ = _acquire_pool(count)
    # One task per worker slot; collecting the results guarantees all
    # forks happened (submission alone spawns processes lazily).
    list(pool.map(_worker_pid, range(count)))
    elapsed = time.perf_counter() - started
    return elapsed


def run_timeout() -> Optional[float]:
    """Per-run wait bound from ``REPRO_RUN_TIMEOUT`` (None = no bound)."""
    raw = os.environ.get(ENV_RUN_TIMEOUT, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"{ENV_RUN_TIMEOUT} must be a number of seconds, got {raw!r}"
        ) from None
    return value if value > 0 else None


def _map_resilient(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: int,
    on_result: Optional[Callable[[int, R, bool], None]] = None,
) -> List[R]:
    """Order-preserving pool map that survives worker failure.

    A worker crash (``BrokenProcessPool`` — OOM-killed child, segfault
    in a native extension, ``os._exit`` in user code) or an over-long
    wait (:data:`ENV_RUN_TIMEOUT`) does not abort the batch: the
    affected items are collected and retried **serially in the parent
    process**, once, after a :class:`RuntimeWarning`.  Exceptions
    *raised by* ``fn`` are real errors and propagate unchanged — a
    deterministic failure would fail the serial retry too.

    ``on_result(index, result, retried)`` — when given — fires in the
    parent after each item's result lands (progress reporting, durable
    landing of sweep results; docs/observability.md,
    docs/resilience.md).  Events follow submission order for pooled
    results, then retry order for serially recovered ones; ``retried``
    is True for the latter.

    A ``KeyboardInterrupt`` (Ctrl-C, or SIGTERM routed through
    :func:`repro.durable.signals.sigterm_as_interrupt`) abandons the
    remaining futures without waiting — workers are told to stop and
    the interrupt propagates so the caller can record partial progress.
    """
    results: List[Optional[R]] = [None] * len(items)
    retry_indexes: List[int] = []
    timeout = run_timeout()
    pool, owns_pool = _acquire_pool(workers)
    poisoned = False
    try:
        try:
            # Chunked submission: one future per run while a per-run
            # timeout is in force (the bound applies to single runs),
            # otherwise ~CHUNKS_PER_WORKER chunks per worker so large
            # sweeps amortize pickling/IPC per future (specs sharing a
            # workload object even share its pickle within a chunk).
            if timeout is None and len(items) > workers:
                size = -(-len(items) // (workers * CHUNKS_PER_WORKER))
            else:
                size = 1
            spans = [
                range(start, min(start + size, len(items)))
                for start in range(0, len(items), size)
            ]
            futures = [
                pool.submit(_run_chunk, fn, tuple(items[i] for i in span))
                for span in spans
            ]
            try:
                for span, future in zip(spans, futures):
                    try:
                        chunk = future.result(timeout=timeout)
                    except FuturesTimeoutError:
                        future.cancel()
                        poisoned = True
                        retry_indexes.extend(span)
                    except (BrokenProcessPool, CancelledError):
                        poisoned = True
                        retry_indexes.extend(span)
                    else:
                        for offset, index in enumerate(span):
                            results[index] = chunk[offset]
                            if on_result is not None:
                                on_result(index, chunk[offset], False)
            except Exception:
                # fn raised (deterministic failure — propagates after
                # the serial-retry policy's contract): don't leave the
                # rest of the batch running behind the caller's back.
                for future in futures:
                    future.cancel()
                raise
        except KeyboardInterrupt:
            poisoned = True
            pool.shutdown(wait=False, cancel_futures=True)
            raise
    except BrokenProcessPool:
        # The pool died while submitting or shutting down; every item
        # without a result gets the serial retry.
        poisoned = True
        done = set(index for index in range(len(items)) if results[index] is not None)
        retry_indexes = sorted(set(retry_indexes) | (set(range(len(items))) - done))
    finally:
        if owns_pool:
            pool.shutdown(wait=not poisoned, cancel_futures=poisoned)
        elif poisoned:
            # A timed-out task may still be running in its worker; a
            # poisoned pool must never serve the next batch.
            shutdown_warm_pool()
    if retry_indexes:
        warnings.warn(
            f"parallel execution failed for {len(retry_indexes)} of "
            f"{len(items)} runs (worker crash or timeout); retrying "
            "serially in the parent process",
            RuntimeWarning,
            stacklevel=3,
        )
        for index in retry_indexes:
            results[index] = fn(items[index])
            if on_result is not None:
                on_result(index, results[index], True)
    return results  # type: ignore[return-value]  # every slot is filled


class SweepInterrupted(KeyboardInterrupt):
    """A sweep was interrupted with partial progress durably recorded.

    Raised by :func:`execute_runs` when a ``KeyboardInterrupt`` (or a
    SIGTERM routed through
    :func:`repro.durable.signals.sigterm_as_interrupt`) arrives
    mid-batch and a :class:`~repro.durable.manifest.SweepManifest` is
    attached: every completed spec is already in the cache and marked
    done, so re-invoking the same sweep re-runs only the remainder.

    Attributes:
        completed: Specs finished (cache hits + fresh runs landed).
        total: Specs in the batch.
    """

    def __init__(self, completed: int, total: int) -> None:
        super().__init__(completed, total)
        self.completed = completed
        self.total = total


def execute_runs(
    specs: Sequence[RunSpec],
    *,
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
    manifest: Optional[object] = None,
) -> List[RunMetrics]:
    """Execute a batch of runs, in parallel where it pays off.

    Cache hits are returned without simulating; misses are fanned out
    over the pool and stored back.  Results align with ``specs`` by
    index regardless of completion order, so the output is identical
    to a serial loop — the determinism tests enforce this bit-for-bit.

    Specs that request a trace file (``RunSpec.trace_out``) or a spans
    profile (``RunSpec.spans_out``) are always simulated, never served
    from the cache: a hit would skip the run and leave no file behind.
    Their metrics are still stored back.

    Args:
        specs: The runs to perform.
        jobs: Worker count override (None = ``REPRO_JOBS`` / CPU count).
        cache: Run cache (None = configure from the environment, which
            means disabled unless ``REPRO_CACHE=1``).
        progress: Optional callback fired in the parent process with a
            :class:`~repro.obs.progress.ProgressEvent` after every run
            resolves (cache hit, simulation, or serial retry).  Purely
            observational — results are identical with or without it.
        manifest: Optional :class:`~repro.durable.manifest.SweepManifest`
            (or a path to create one) recording durable per-spec
            completion.  Each fresh result is landed **incrementally** —
            stored to the cache, then marked done — so a crash or kill
            mid-batch loses at most the runs still in flight; re-running
            the same batch re-simulates only the remainder.  Requires an
            enabled cache (the manifest records *that* a spec finished,
            the cache holds *what* it produced).  On interrupt the
            manifest is finalized ``"interrupted"`` and
            :class:`SweepInterrupted` (a ``KeyboardInterrupt``) reports
            the completed/total counts.
    """
    specs = list(specs)
    if cache is None:
        cache = RunCache.from_env()
    if manifest is not None:
        from repro.durable.manifest import SweepManifest

        if not isinstance(manifest, SweepManifest):
            manifest = SweepManifest(manifest)  # type: ignore[arg-type]
        if not cache.enabled:
            raise ValueError(
                "a sweep manifest needs an enabled run cache: the manifest "
                "records which specs finished, the cache holds their metrics "
                "(enable with REPRO_CACHE=1 or pass a RunCache)"
            )
        manifest.begin(len(specs))
    tracker = ProgressTracker(len(specs), progress) if progress is not None else None
    results: List[Optional[RunMetrics]] = [None] * len(specs)
    keys: List[Optional[str]] = [None] * len(specs)
    pending: List[int] = []
    for index, spec in enumerate(specs):
        if cache.enabled:
            keys[index] = cache.key(
                spec.workload,
                spec.algorithm,
                max_skip_count=spec.max_skip_count,
                lookahead=spec.lookahead,
                max_eccs_per_job=spec.max_eccs_per_job,
                faults=spec.faults,
                retry=spec.retry,
            )
            if spec.trace_out is None and spec.spans_out is None and not spec.spans:
                hit = cache.get(keys[index])
                if hit is not None:
                    results[index] = hit
                    if manifest is not None:
                        manifest.mark_done(
                            keys[index], algorithm=spec.algorithm
                        )
                    if tracker is not None:
                        tracker.hit()
                    continue
        pending.append(index)

    def _land(position: int, metrics: RunMetrics, retried: bool) -> None:
        # Fires as each fresh result arrives: persist before moving on,
        # so an interrupt loses only the runs still in flight.
        index = pending[position]
        results[index] = metrics
        key = keys[index]
        if key is not None:
            cache.put(key, metrics)
            if manifest is not None:
                manifest.mark_done(key, algorithm=specs[index].algorithm)
        if tracker is not None:
            tracker.ran(retried=retried)

    try:
        work_hint = sum(len(specs[index].workload) for index in pending)
        workers = _effective_workers(jobs, len(pending), work_hint)
        if workers > 1:
            _map_resilient(
                execute_spec, [specs[index] for index in pending], workers, _land
            )
        else:
            for position, index in enumerate(pending):
                _land(position, execute_spec(specs[index]), False)
    except KeyboardInterrupt:
        if manifest is not None:
            manifest.finalize("interrupted")
            completed = sum(1 for r in results if r is not None)
            raise SweepInterrupted(completed, len(specs)) from None
        raise
    if manifest is not None:
        manifest.finalize("complete")
    return results  # type: ignore[return-value]  # every slot is filled


def _picklable(*objects: object) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    jobs: Optional[int] = None,
    work_hint: Optional[int] = None,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
) -> List[R]:
    """Order-preserving map over worker processes, serial fallback.

    Used for coarse work units (sweep points, grid cells, replica
    seeds) whose function does more than a single simulation.  Falls
    back to a plain loop when parallelism cannot help (one item, no
    fork) or cannot work (``fn``/items not picklable — e.g. a test's
    closure handed to ``replicate_sweep``).

    Args:
        fn: Top-level callable applied to every item.
        items: The work units.
        jobs: Worker count override.
        work_hint: Approximate number of simulated jobs in the batch;
            implicit parallelism is skipped below
            :data:`PARALLEL_MIN_WORK` (ignored when the worker count
            is explicit).
        progress: Optional parent-side callback fired with a
            :class:`~repro.obs.progress.ProgressEvent` after each work
            unit completes (every unit counts as a fresh run — this
            layer has no cache).
    """
    items = list(items)
    tracker = ProgressTracker(len(items), progress) if progress is not None else None
    workers = _effective_workers(jobs, len(items), work_hint)
    if workers > 1 and _picklable(fn, items[0]):
        on_result = None
        if tracker is not None:
            on_result = lambda _i, _r, retried: tracker.ran(retried=retried)  # noqa: E731
        return _map_resilient(fn, items, workers, on_result)
    results: List[R] = []
    for item in items:
        results.append(fn(item))
        if tracker is not None:
            tracker.ran()
    return results


__all__ = [
    "CHUNKS_PER_WORKER",
    "ENV_JOBS",
    "ENV_RUN_TIMEOUT",
    "ENV_WARM_POOL",
    "PARALLEL_MIN_WORK",
    "RunSpec",
    "SweepInterrupted",
    "execute_runs",
    "execute_spec",
    "fork_available",
    "parallel_map",
    "resolve_jobs",
    "run_timeout",
    "shutdown_warm_pool",
    "warm_pool",
    "warm_pool_enabled",
]
