"""Load calibration: find the β_arr hitting a target offered load.

The paper varies Load in [0.5, 1] by varying ``β_arr`` in
[0.4101, 0.6101] (Table II).  Offered load is monotonically
*decreasing* in ``β_arr`` (larger β → longer inter-arrival gaps), so a
bisection on the generated workload's measured load converges quickly.
Calibration is per (generator config, seed): each plotted point in §V
is a single seeded run whose measured load is the x-coordinate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig, Workload


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of one calibration."""

    beta_arr: float
    achieved_load: float
    workload: Workload


def _measured_load(config: GeneratorConfig, beta_arr: float, seed: int) -> Tuple[float, Workload]:
    generator = CWFWorkloadGenerator(config.with_beta_arr(beta_arr))
    workload = generator.generate(np.random.default_rng(seed))
    return workload.offered_load(), workload


def calibrate_beta_arr(
    config: GeneratorConfig,
    target_load: float,
    seed: int,
    *,
    low: float = 0.25,
    high: float = 1.2,
    tolerance: float = 0.02,
    max_iterations: int = 40,
) -> CalibrationResult:
    """Bisect ``β_arr`` until the generated workload's load ≈ target.

    Args:
        config: Generator configuration (its ``β_arr`` is overridden).
        target_load: Desired offered load (e.g. 0.9).
        seed: Workload seed — the same seed is used at every probe so
            the search is deterministic and the returned workload is
            exactly the one whose load was measured.
        low / high: β_arr bracket.  Load decreases with β_arr, so
            ``low`` yields the highest load.
        tolerance: Acceptable |achieved − target|.
        max_iterations: Bisection budget.

    Returns:
        The calibrated β_arr, the achieved load, and the workload.

    Raises:
        ValueError: when the target lies outside the bracket's
            achievable range.
    """
    if target_load <= 0:
        raise ValueError(f"target load must be positive, got {target_load}")

    load_at_low, wl_low = _measured_load(config, low, seed)
    if target_load >= load_at_low:
        if abs(load_at_low - target_load) <= tolerance:
            return CalibrationResult(low, load_at_low, wl_low)
        raise ValueError(
            f"target load {target_load:.3f} exceeds the achievable maximum "
            f"{load_at_low:.3f} at beta_arr={low}; widen the bracket"
        )
    load_at_high, wl_high = _measured_load(config, high, seed)
    if target_load <= load_at_high:
        if abs(load_at_high - target_load) <= tolerance:
            return CalibrationResult(high, load_at_high, wl_high)
        raise ValueError(
            f"target load {target_load:.3f} is below the achievable minimum "
            f"{load_at_high:.3f} at beta_arr={high}; widen the bracket"
        )

    best = CalibrationResult(low, load_at_low, wl_low)
    for _ in range(max_iterations):
        mid = 0.5 * (low + high)
        load, workload = _measured_load(config, mid, seed)
        if abs(load - target_load) < abs(best.achieved_load - target_load):
            best = CalibrationResult(mid, load, workload)
        if abs(load - target_load) <= tolerance:
            return CalibrationResult(mid, load, workload)
        if load > target_load:
            low = mid  # too much load -> slow arrivals down
        else:
            high = mid
    return best


__all__ = ["CalibrationResult", "calibrate_beta_arr"]
