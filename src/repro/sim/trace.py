"""Structured trace log for simulations.

Every state transition the runner performs (arrival, start, finish,
ECC application, dedicated promotion, ...) is recorded as a
:class:`TraceRecord`.  Tests use traces to assert *event-level*
invariants — e.g. "no job ever started before it arrived", "capacity
was never exceeded between any two consecutive records" — rather than
only end-of-run aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One audited simulation transition.

    Attributes:
        time: Simulation instant of the transition.
        kind: Short machine-readable tag (``"arrive"``, ``"start"``,
            ``"finish"``, ``"ecc"``, ``"promote"``, ...).
        data: Free-form payload (job ids, sizes, deltas).
    """

    time: float
    kind: str
    data: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        payload = ", ".join(f"{k}={v!r}" for k, v in sorted(self.data.items()))
        return f"[{self.time:>10.1f}] {self.kind}({payload})"


class TraceLog:
    """Append-only trace with query helpers and an optional sink.

    Tracing can be disabled (``enabled=False``) for large sweeps; the
    API stays identical so call-sites never branch.  A ``sink`` — any
    callable taking one :class:`TraceRecord` — receives every record
    as it is produced; with ``store=False`` records go *only* to the
    sink, so streaming a long run to disk
    (:class:`repro.obs.trace_io.TraceWriter`) keeps memory flat.
    """

    def __init__(
        self,
        enabled: bool = True,
        *,
        sink: Optional[Callable[[TraceRecord], None]] = None,
        store: bool = True,
    ) -> None:
        self.enabled = enabled
        self.sink = sink
        self._store = store
        self._records: list[TraceRecord] = []

    def record(self, time: float, kind: str, **data: Any) -> None:
        """Append a record (no-op when tracing is disabled)."""
        if not self.enabled:
            return
        record = TraceRecord(time=time, kind=kind, data=data)
        if self._store:
            self._records.append(record)
        if self.sink is not None:
            self.sink(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]

    def of_kind(self, *kinds: str) -> list[TraceRecord]:
        """All records whose ``kind`` is among ``kinds``, in time order."""
        wanted = set(kinds)
        return [r for r in self._records if r.kind in wanted]

    def kinds(self) -> set[str]:
        """Set of distinct record kinds seen."""
        return {r.kind for r in self._records}

    def between(self, t0: float, t1: float) -> list[TraceRecord]:
        """Records with ``t0 <= time <= t1``."""
        return [r for r in self._records if t0 <= r.time <= t1]

    def is_time_ordered(self) -> bool:
        """True when record times are non-decreasing (sanity check)."""
        times = [r.time for r in self._records]
        return all(a <= b for a, b in zip(times, times[1:]))

    def extend(self, records: Iterable[TraceRecord]) -> None:
        """Bulk-append (used when merging sub-traces in tests)."""
        if not self.enabled:
            return
        if self.sink is not None:
            records = list(records)
            for record in records:
                self.sink(record)
        if self._store:
            self._records.extend(records)


__all__ = ["TraceLog", "TraceRecord"]
