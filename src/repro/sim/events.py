"""Event records for the discrete-event engine.

Events are ordered by ``(time, priority, seq)``.  ``seq`` is a
monotonically increasing tie-breaker assigned by the simulator so that
two events scheduled for the same instant with the same priority fire
in scheduling order.  This makes every simulation fully deterministic,
which the test-suite and the reproduction experiments rely on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Callable


class EventPriority(IntEnum):
    """Relative ordering of events that fire at the same instant.

    Lower values fire first.  The ordering encodes the semantics the
    paper's simulation framework (GridSim/ALEA) exhibits:

    - job terminations release capacity before anything else at the
      same timestamp (``FINISH``) — a job completing at the very
      instant a fault strikes has completed,
    - elastic control commands are applied next (``ECC``) so a
      reduction arriving exactly at a scheduling instant is visible to
      the scheduler,
    - fault-model events fire next (``FAULT``: node failures, node
      repairs and injected job failures), so the scheduler cycle of
      the same instant already observes the degraded (or repaired)
      machine,
    - job arrivals enter the queues (``ARRIVAL``; failed jobs re-enter
      through the same slot when requeued),
    - dedicated-job start-time timers fire (``TIMER``),
    - the scheduler cycle runs last (``SCHEDULE``), observing a
      consistent post-update state.
    """

    FINISH = 0
    ECC = 1
    FAULT = 2
    ARRIVAL = 3
    TIMER = 4
    SCHEDULE = 5
    LOW = 9


_seq_counter = itertools.count()


def advance_seq(minimum: int) -> None:
    """Ensure future sequence numbers are ``>= minimum``.

    Called when a checkpointed simulation is restored in a fresh
    process (:mod:`repro.durable.checkpoint`): the restored event heap
    carries seq values from the original process, and events scheduled
    *after* the restore must sort behind every heap resident with an
    equal ``(time, priority)`` — exactly as they would have in the
    uninterrupted run.  Only relative order matters, so jumping the
    counter forward is always safe; it never moves backwards.

    Rebinds both this module's counter and the engine's cached
    ``_next_seq`` alias (the hot-path shortcut in
    :mod:`repro.sim.engine`).
    """
    global _seq_counter
    current = next(_seq_counter)
    _seq_counter = itertools.count(max(current, minimum))
    from repro.sim import engine

    engine._next_seq = _seq_counter.__next__


@dataclass(slots=True)
class Event:
    """A single scheduled occurrence inside a :class:`Simulator`.

    Attributes:
        time: Simulation instant at which the event fires.
        priority: Same-instant ordering (see :class:`EventPriority`).
        action: Zero-argument callable invoked when the event fires.
        name: Human-readable label used in traces and error messages.
        seq: Tie-breaker assigned at scheduling time.
        cancelled: Lazily honoured cancellation flag; cancelled events
            stay in the heap but are skipped by the engine.
    """

    time: float
    priority: int
    action: Callable[[], Any]
    name: str = ""
    seq: int = field(default_factory=lambda: next(_seq_counter))
    cancelled: bool = False
    #: Owning simulator while the event sits in its heap; lets the
    #: engine keep a live-event counter without scanning the heap.
    #: Cleared when the event fires or is discarded.
    _sink: Any = field(default=None, repr=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled.

        Cancellation is O(1): the engine discards cancelled events when
        they reach the top of the heap (or during a compaction pass)
        and keeps its live-event count exact via the notification hook.
        Cancelling an event that already fired, or cancelling twice,
        is a no-op.
        """
        if self.cancelled:
            return
        self.cancelled = True
        sink = self._sink
        if sink is not None:
            self._sink = None
            sink._note_cancelled()

    def sort_key(self) -> tuple[float, int, int]:
        """Ordering key used by the event heap."""
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self.cancelled else ""
        label = self.name or getattr(self.action, "__name__", "<action>")
        return f"Event(t={self.time!r}, p={int(self.priority)}, {label}{flag})"


__all__ = ["Event", "EventPriority", "advance_seq"]
