"""Discrete-event simulation substrate.

This subpackage replaces the GridSim + ALEA 2 Java stack used by the
paper with a small, deterministic discrete-event engine:

- :mod:`repro.sim.events` — event records and stable ordering rules,
- :mod:`repro.sim.engine` — the :class:`~repro.sim.engine.Simulator`
  event loop (heap-based, cancellable events, run-until semantics),
- :mod:`repro.sim.trace` — structured trace log used by tests and the
  experiment harness to audit simulations.

The engine is intentionally minimal: scheduling research only needs a
clock, an ordered event heap and deterministic tie-breaking.  Everything
domain-specific (machines, queues, schedulers) lives in sibling
subpackages and communicates through plain callbacks.
"""

from repro.sim.engine import Simulator, SimulationError
from repro.sim.events import Event, EventPriority
from repro.sim.trace import TraceLog, TraceRecord

__all__ = [
    "Event",
    "EventPriority",
    "SimulationError",
    "Simulator",
    "TraceLog",
    "TraceRecord",
]
