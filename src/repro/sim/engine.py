"""The discrete-event simulation engine.

:class:`Simulator` is a classic event-heap loop: callers schedule
:class:`~repro.sim.events.Event` objects at absolute times (or relative
delays) and :meth:`Simulator.run` pops them in ``(time, priority, seq)``
order, advancing the clock monotonically.  It is the substrate on which
the whole reproduction runs, standing in for GridSim + ALEA 2.

Design notes (kept deliberately simple per the HPC-Python guides: make
it work, make it testable, only then optimize):

- The heap stores ``(time, priority, seq, event)`` tuples: ``seq`` is
  unique, so sift comparisons resolve on plain tuple elements and
  never call back into ``Event.__lt__`` — heap maintenance showed up
  at ~25% of simulation wall time when events compared themselves.
  Cancellation is a lazily-honoured flag so rescheduling a job's
  finish event (runtime elasticity!) is O(log n) to add and O(1) to
  cancel.  The engine keeps an exact count
  of cancelled-but-still-heaped events (events notify it on
  cancellation), so :meth:`Simulator.pending_count` is O(1) rather
  than a heap scan, and the heap is compacted whenever cancelled
  events outnumber live ones — elastic runs that reschedule every
  finish event stay linear in live work.
- Time never goes backwards.  Scheduling an event in the past raises
  :class:`SimulationError` immediately rather than corrupting the run.
- ``run(until=...)`` stops *after* processing all events at ``until``;
  ``step()`` processes exactly one event and is what the unit tests
  exercise for fine-grained assertions.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from time import perf_counter
from typing import Any, Callable, Iterator, Optional

from repro.sim.events import Event, EventPriority, _seq_counter

_next_seq = _seq_counter.__next__


class SimulationError(RuntimeError):
    """Raised on misuse of the engine (e.g. scheduling in the past)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Args:
        start_time: Initial value of the simulation clock.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule_at(5.0, lambda: fired.append(sim.now))
        >>> sim.run()
        1
        >>> fired
        [5.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        # Entries are (time, priority, seq, event); seq is unique so
        # comparisons never fall through to the Event object.
        self._heap: list[tuple[float, int, int, Event]] = []
        self._processed = 0
        self._running = False
        #: Cancelled events still sitting in the heap (exact count).
        self._cancelled_in_heap = 0

    # ------------------------------------------------------------------
    # Clock and introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._processed

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued.

        O(1): maintained as ``len(heap) - cancelled`` from the
        cancellation notifications, not by scanning the heap.
        """
        return len(self._heap) - self._cancelled_in_heap

    def pending(self) -> Iterator[Event]:
        """Iterate live queued events in an unspecified order."""
        return (entry[3] for entry in self._heap if not entry[3].cancelled)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` when drained."""
        self._drop_cancelled_head()
        return self._heap[0][0] if self._heap else None

    def max_seq(self) -> int:
        """Largest sequence number still sitting in the heap (-1 if empty).

        The checkpoint layer persists this watermark so a restore in a
        fresh process can advance the global sequence counter past
        every queued event (:func:`repro.sim.events.advance_seq`),
        keeping same-instant tie-breaks identical to the uninterrupted
        run.  Cancelled events are included — they are heap residents
        too, and a larger watermark is always safe.
        """
        return max((entry[2] for entry in self._heap), default=-1)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self,
        time: float,
        action: Callable[[], Any],
        *,
        priority: int = EventPriority.LOW,
        name: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute simulation ``time``.

        Returns the :class:`Event`, which the caller may later
        :meth:`~repro.sim.events.Event.cancel`.

        Raises:
            SimulationError: if ``time`` precedes the current clock.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule {name or action!r} at t={time}; clock is at t={self._now}"
            )
        # Sequence assigned here (not via the Event field default) so
        # the heap entry is built from locals — this constructor is the
        # hottest allocation in a simulation.
        t = float(time)
        p = int(priority)
        seq = _next_seq()
        event = Event(t, p, action, name, seq)
        event._sink = self
        heappush(self._heap, (t, p, seq, event))
        return event

    def schedule_in(
        self,
        delay: float,
        action: Callable[[], Any],
        *,
        priority: int = EventPriority.LOW,
        name: str = "",
    ) -> Event:
        """Schedule ``action`` after a non-negative relative ``delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for {name or action!r}")
        return self.schedule_at(self._now + delay, action, priority=priority, name=name)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> Optional[Event]:
        """Fire the next live event, advancing the clock.

        Returns the event fired, or ``None`` if the heap is empty.
        """
        self._drop_cancelled_head()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)[3]
        event._sink = None  # fired: a late cancel() must not decrement
        self._now = event.time
        self._processed += 1
        event.action()
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run until the heap drains, ``until`` passes, or ``max_events``.

        Args:
            until: Inclusive horizon; events at exactly ``until`` are
                processed, later ones are left queued and the clock is
                advanced to ``until``.
            max_events: Safety valve for runaway simulations.

        Returns:
            Number of events processed by this call.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        fired = 0
        heap = self._heap
        pop = heappop
        # Span instrumentation is selected ONCE here: when a recorder
        # is active, dedicated loop variants account each dispatch to
        # the "event" phase; otherwise the loops below are exactly the
        # pre-instrumentation code, so the disabled-path per-event
        # cost is zero (docs/observability.md, spans-equivalence CI).
        #
        # Aggregate mode (no timeline) times dispatches with two bare
        # clock reads and folds the batch in once via add_bulk() —
        # spans opened inside actions close as stack roots, so the
        # root_child delta across this call is exactly the child time
        # to subtract from the batch's self time.  Timeline mode keeps
        # the begin/end pair per event so the Chrome export gets one
        # slice per dispatch; that is the expensive opt-in path.
        from repro.obs import spans as _spans

        recorder = _spans._ACTIVE
        try:
            if recorder is not None and not recorder.timeline:
                clock = perf_counter
                bulk_time = 0.0
                root_child_before = recorder.root_child
                try:
                    if until is None and max_events is None:
                        while heap:
                            entry = heap[0]
                            if entry[3].cancelled:
                                pop(heap)
                                self._cancelled_in_heap -= 1
                                continue
                            event = pop(heap)[3]
                            event._sink = None
                            self._now = event.time
                            fired += 1
                            started = clock()
                            event.action()
                            bulk_time += clock() - started
                    else:
                        while True:
                            if max_events is not None and fired >= max_events:
                                break
                            while heap and heap[0][3].cancelled:
                                pop(heap)
                                self._cancelled_in_heap -= 1
                            if not heap:
                                break
                            next_time = heap[0][0]
                            if until is not None and next_time > until:
                                self._now = max(self._now, until)
                                break
                            event = pop(heap)[3]
                            event._sink = None
                            self._now = event.time
                            fired += 1
                            started = clock()
                            event.action()
                            bulk_time += clock() - started
                finally:
                    child_time = recorder.root_child - root_child_before
                    recorder.add_bulk("event", fired, bulk_time, bulk_time - child_time)
            elif recorder is not None:
                span_begin = recorder.begin
                span_end = recorder.end
                if until is None and max_events is None:
                    while heap:
                        entry = heap[0]
                        if entry[3].cancelled:
                            pop(heap)
                            self._cancelled_in_heap -= 1
                            continue
                        event = pop(heap)[3]
                        event._sink = None
                        self._now = event.time
                        fired += 1
                        token = span_begin("event")
                        try:
                            event.action()
                        finally:
                            span_end(token)
                else:
                    while True:
                        if max_events is not None and fired >= max_events:
                            break
                        while heap and heap[0][3].cancelled:
                            pop(heap)
                            self._cancelled_in_heap -= 1
                        if not heap:
                            break
                        next_time = heap[0][0]
                        if until is not None and next_time > until:
                            self._now = max(self._now, until)
                            break
                        event = pop(heap)[3]
                        event._sink = None
                        self._now = event.time
                        fired += 1
                        token = span_begin("event")
                        try:
                            event.action()
                        finally:
                            span_end(token)
            # Inlined peek/step: one heap-head inspection per event
            # fired.  This loop is the innermost of every simulation,
            # so the per-event call overhead matters (~5% of wall).
            # The run-to-drain case (no horizon, no event cap — every
            # full simulation) gets its own loop without the two
            # per-iteration horizon checks; the processed-event count
            # is folded in once at exit instead of per event.
            elif until is None and max_events is None:
                while heap:
                    entry = heap[0]
                    if entry[3].cancelled:
                        pop(heap)
                        self._cancelled_in_heap -= 1
                        continue
                    event = pop(heap)[3]
                    event._sink = None  # fired: late cancel() must not decrement
                    self._now = event.time
                    fired += 1
                    event.action()
            else:
                while True:
                    if max_events is not None and fired >= max_events:
                        break
                    while heap and heap[0][3].cancelled:
                        pop(heap)
                        self._cancelled_in_heap -= 1
                    if not heap:
                        break
                    next_time = heap[0][0]
                    if until is not None and next_time > until:
                        self._now = max(self._now, until)
                        break
                    event = pop(heap)[3]
                    event._sink = None  # fired: late cancel() must not decrement
                    self._now = event.time
                    fired += 1
                    event.action()
        finally:
            self._processed += fired
            self._running = False
        return fired

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
            self._cancelled_in_heap -= 1

    def _note_cancelled(self) -> None:
        """Cancellation hook from :meth:`Event.cancel`.

        Keeps the live-event count exact and compacts the heap once
        cancelled events outnumber live ones, bounding both memory and
        the log-factor of subsequent pushes by the *live* event count.
        """
        self._cancelled_in_heap += 1
        if self._cancelled_in_heap * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap with cancelled events dropped.

        In place: ``run()`` holds a local alias to the heap list, and
        compaction can trigger mid-run from inside an event action.
        """
        self._heap[:] = [entry for entry in self._heap if not entry[3].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0


__all__ = ["SimulationError", "Simulator"]
