"""``W^b`` — the FIFO queue of waiting batch jobs.

Invariant (Notations box): ``w_1.arr <= w_2.arr <= ... <= w_B.arr``.
One exception is built into the paper itself: Algorithm 3 moves a due
dedicated job *to the head* of the batch queue regardless of arrival
order, so the queue supports an explicit :meth:`push_head` alongside
the arrival-ordered :meth:`push`.

Representation (docs/performance.md, "the streaming-scale cliff"):
every queued job holds an integer **order token** — tail pushes take
increasing tokens, head pushes decreasing ones — so ascending token
order *is* FIFO order.  Three indexes hang off the tokens:

- ``_order`` — the sorted live tokens (queue order; head at index 0),
- ``_by_token``/``_index`` — token ↔ job maps giving O(1) membership
  and O(log B) :meth:`remove` instead of the old O(B) deque scan
  (under saturation the backlog depth grows with the workload length,
  which made every mid-queue removal superlinear in total job count),
- ``_by_size`` — per-processor-count token lists feeding
  :meth:`iter_fitting`, the backfill fast path that visits only the
  candidates whose size fits the free capacity, in exact queue order.

A job's indexed size can go stale when an EP/RP command resizes it
*while queued* (the ECC processor mutates ``job.num`` in place); the
runner reports that through :meth:`note_resize` so the size index
never lies.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from typing import Dict, Iterator, List, Optional, Tuple

from repro.workload.job import Job, JobState


class BatchQueue:
    """FIFO waiting queue of batch jobs with arrival-order checking."""

    def __init__(self) -> None:
        #: Live order tokens, ascending == FIFO order (head first).
        self._order: List[int] = []
        #: token -> queued job.
        self._by_token: Dict[int, Job] = {}
        #: job_id -> (token, indexed processor count).  The size is
        #: recorded at insertion so removal never trusts a ``job.num``
        #: that an ECC may have moved without :meth:`note_resize`.
        self._index: Dict[int, Tuple[int, int]] = {}
        #: processor count -> ascending tokens of queued jobs that size.
        self._by_size: Dict[int, List[int]] = {}
        self._next_tail = 0
        self._next_head = -1
        #: Monotonic mutation counter (any push/pop/remove bumps it).
        #: The runner folds it into its cycle-elision fingerprint so any
        #: membership or order change invalidates elision in O(1).  A
        #: plain attribute, not a property: it is read on every
        #: scheduling event.  Callers must never write it.
        self.version = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Job]:
        by_token = self._by_token
        return (by_token[token] for token in self._order)

    def __bool__(self) -> bool:
        return bool(self._order)

    def __contains__(self, job: Job) -> bool:
        return job.job_id in self._index

    @property
    def head(self) -> Optional[Job]:
        """The paper's ``w_1^b`` (None when empty)."""
        return self._by_token[self._order[0]] if self._order else None

    def jobs(self) -> List[Job]:
        """Snapshot of the queue in FIFO order."""
        by_token = self._by_token
        return [by_token[token] for token in self._order]

    def tail(self) -> List[Job]:
        """All jobs behind the head."""
        by_token = self._by_token
        return [by_token[token] for token in self._order[1:]]

    def iter_fitting(self, max_num: int) -> Iterator[Job]:
        """Queued jobs with ``num <= max_num``, in exact queue order.

        The backfill fast path: a k-way heap merge over the per-size
        token lists, so a scan for a fitting candidate visits only the
        jobs that could possibly start — under saturation the backlog
        is dominated by too-wide jobs the plain scan wades through.
        The queue must not be mutated while the iterator is live
        (consumers stop at their first match and return a decision;
        mutation happens after).
        """
        by_size = self._by_size
        entries = [
            (tokens[0], 1, size)
            for size, tokens in by_size.items()
            if size <= max_num
        ]
        if not entries:
            return
        heapq.heapify(entries)
        by_token = self._by_token
        while entries:
            token, next_pos, size = entries[0]
            yield by_token[token]
            tokens = by_size[size]
            if next_pos < len(tokens):
                heapq.heapreplace(entries, (tokens[next_pos], next_pos + 1, size))
            else:
                heapq.heappop(entries)

    # ------------------------------------------------------------------
    def _insert(self, job: Job, token: int, at_head: bool) -> None:
        if at_head:
            self._order.insert(0, token)
        else:
            self._order.append(token)
        self._by_token[token] = job
        self._index[job.job_id] = (token, job.num)
        sized = self._by_size.get(job.num)
        if sized is None:
            self._by_size[job.num] = [token]
        elif at_head:
            # A head token is smaller than every live token.
            sized.insert(0, token)
        else:
            sized.append(token)
        self.version += 1

    def push(self, job: Job) -> None:
        """Append an arriving batch job (FIFO position).

        Resets ``scount`` — a job starts with zero skips — and flips
        the job to ``QUEUED``.

        Raises:
            ValueError: if the job would violate arrival ordering by
                more than head-promotion allows (i.e. arrivals must be
                fed in submission order).
        """
        if self._order:
            last = self._by_token[self._order[-1]]
            if job.submit < last.effective_arrival():
                raise ValueError(
                    f"job {job.job_id} (arr={job.submit}) arrives before queue tail "
                    f"(arr={last.effective_arrival()}); feed arrivals in order"
                )
        job.scount = 0
        job.state = JobState.QUEUED
        token = self._next_tail
        self._next_tail += 1
        self._insert(job, token, at_head=False)

    def push_head(self, job: Job) -> None:
        """Prepend a job (Algorithm 3's dedicated-job promotion)."""
        job.state = JobState.QUEUED
        token = self._next_head
        self._next_head -= 1
        self._insert(job, token, at_head=True)

    def push_requeue(self, job: Job, now: float) -> None:
        """Re-enqueue a failed/evicted job at the tail (retry policy).

        The job's *effective arrival* becomes ``now``, so FIFO ordering
        by effective arrival is preserved: every later push happens at
        a simulation time ``>= now``.  The skip count resets — a
        restarted job starts a fresh Delayed-LOS skip budget.
        """
        if self._order:
            last = self._by_token[self._order[-1]]
            if now < last.effective_arrival():
                raise ValueError(
                    f"job {job.job_id} requeued at t={now} before queue tail "
                    f"(arr={last.effective_arrival()})"
                )
        job.requeued_at = now
        job.scount = 0
        job.state = JobState.QUEUED
        token = self._next_tail
        self._next_tail += 1
        self._insert(job, token, at_head=False)

    def _delete(self, token: int, position: int) -> Job:
        del self._order[position]
        job = self._by_token.pop(token)
        _, indexed_num = self._index.pop(job.job_id)
        sized = self._by_size[indexed_num]
        if len(sized) == 1:
            del self._by_size[indexed_num]
        else:
            del sized[bisect_left(sized, token)]
        self.version += 1
        return job

    def pop_head(self) -> Job:
        """Remove and return ``w_1^b``.

        Raises:
            IndexError: when the queue is empty.
        """
        return self._delete(self._order[0], 0)

    def remove(self, job: Job) -> None:
        """Remove a specific job (selected mid-queue by the DP).

        Raises:
            ValueError: when the job is not queued.
        """
        entry = self._index.get(job.job_id)
        if entry is None:
            raise ValueError(f"job {job.job_id} is not in the batch queue")
        token = entry[0]
        self._delete(token, bisect_left(self._order, token))

    def remove_all(self, jobs: List[Job]) -> None:
        """Remove a selected set ``S`` (order-independent)."""
        for job in jobs:
            self.remove(job)

    def note_resize(self, job: Job) -> bool:
        """Re-index a queued job whose ``num`` an applied ECC moved.

        The ECC processor mutates ``job.num`` in place for EP/RP
        commands on *queued* jobs; the runner calls this afterwards so
        the size index keeps matching reality.  Tolerant of jobs not
        in the queue (dedicated-queue citizens, pending jobs): returns
        whether the index changed.
        """
        entry = self._index.get(job.job_id)
        if entry is None:
            return False
        token, indexed_num = entry
        if indexed_num == job.num:
            return False
        sized = self._by_size[indexed_num]
        if len(sized) == 1:
            del self._by_size[indexed_num]
        else:
            del sized[bisect_left(sized, token)]
        insort(self._by_size.setdefault(job.num, []), token)
        self._index[job.job_id] = (token, job.num)
        return True

    # ------------------------------------------------------------------
    # Pickling (docs/resilience.md): checkpoints serialize the whole
    # runner.  Persist the ordered job list plus the mutation counter
    # (it feeds the pickled elision fingerprint) and rebuild the token
    # indexes on load — tokens are renumbered but order, the only thing
    # decisions ever read, is preserved exactly.
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        return {"jobs": self.jobs(), "version": self.version}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__init__()
        if "jobs" in state:
            jobs = state["jobs"]
        else:
            # Pre-index checkpoints stored the raw deque.
            jobs = list(state.get("_queue", ()))
        for job in jobs:  # type: ignore[union-attr]
            token = self._next_tail
            self._next_tail += 1
            self._insert(job, token, at_head=False)
        self.version = int(state.get("version", 0))  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    def check_invariants(self, allow_promoted_head: bool = True) -> None:
        """Assert FIFO ordering and index consistency (property tests).

        ``allow_promoted_head`` tolerates a *prefix* of promoted
        dedicated jobs: Algorithm 3 pushes each due dedicated job to
        the head, and since ordinary arrivals append at the tail, all
        still-waiting promoted jobs always occupy a contiguous prefix
        (in reverse promotion order).  The batch suffix behind them
        must be FIFO by *effective arrival* — requeued jobs (fault
        recovery) re-enter at the tail with their requeue instant as
        the ordering key, and an evicted dedicated job rejoins as an
        ordinary batch-tail citizen rather than a promoted head.
        """
        assert self._order == sorted(self._order), "token order drifted"
        assert len(self._order) == len(self._by_token) == len(self._index)
        sized_count = 0
        for size, tokens in self._by_size.items():
            assert tokens == sorted(tokens), f"size-{size} tokens out of order"
            assert tokens, f"empty token list retained for size {size}"
            sized_count += len(tokens)
            for token in tokens:
                job = self._by_token[token]
                assert job.num == size, (
                    f"job {job.job_id} indexed at size {size} but num={job.num} "
                    "(missed note_resize?)"
                )
        assert sized_count == len(self._order), "size index lost a job"
        for job_id, (token, indexed_num) in self._index.items():
            assert self._by_token[token].job_id == job_id, "token map drifted"
            assert self._by_token[token].num == indexed_num
        jobs = self.jobs()
        start = 0
        if allow_promoted_head:
            while start < len(jobs) and jobs[start].is_dedicated:
                start += 1
        for earlier, later in zip(jobs[start:], jobs[start + 1 :]):
            assert (
                not later.is_dedicated
                or later.requeued_at is not None
                or not allow_promoted_head
            ), f"promoted dedicated job {later.job_id} outside the queue prefix"
            assert earlier.effective_arrival() <= later.effective_arrival(), (
                f"FIFO violation: {earlier.job_id} (arr={earlier.effective_arrival()}) "
                f"before {later.job_id} (arr={later.effective_arrival()})"
            )


__all__ = ["BatchQueue"]
