"""``W^b`` — the FIFO queue of waiting batch jobs.

Invariant (Notations box): ``w_1.arr <= w_2.arr <= ... <= w_B.arr``.
One exception is built into the paper itself: Algorithm 3 moves a due
dedicated job *to the head* of the batch queue regardless of arrival
order, so the queue supports an explicit :meth:`push_head` alongside
the arrival-ordered :meth:`push`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Optional

from repro.workload.job import Job, JobState


class BatchQueue:
    """FIFO waiting queue of batch jobs with arrival-order checking."""

    def __init__(self) -> None:
        self._queue: Deque[Job] = deque()
        #: Monotonic mutation counter (any push/pop/remove bumps it).
        #: The runner folds it into its cycle-elision fingerprint so any
        #: membership or order change invalidates elision in O(1).  A
        #: plain attribute, not a property: it is read on every
        #: scheduling event.  Callers must never write it.
        self.version = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __contains__(self, job: Job) -> bool:
        return any(j.job_id == job.job_id for j in self._queue)

    @property
    def head(self) -> Optional[Job]:
        """The paper's ``w_1^b`` (None when empty)."""
        return self._queue[0] if self._queue else None

    def jobs(self) -> List[Job]:
        """Snapshot of the queue in FIFO order."""
        return list(self._queue)

    def tail(self) -> List[Job]:
        """All jobs behind the head."""
        return list(self._queue)[1:]

    # ------------------------------------------------------------------
    def push(self, job: Job) -> None:
        """Append an arriving batch job (FIFO position).

        Resets ``scount`` — a job starts with zero skips — and flips
        the job to ``QUEUED``.

        Raises:
            ValueError: if the job would violate arrival ordering by
                more than head-promotion allows (i.e. arrivals must be
                fed in submission order).
        """
        if self._queue and job.submit < self._queue[-1].effective_arrival():
            raise ValueError(
                f"job {job.job_id} (arr={job.submit}) arrives before queue tail "
                f"(arr={self._queue[-1].effective_arrival()}); feed arrivals in order"
            )
        job.scount = 0
        job.state = JobState.QUEUED
        self._queue.append(job)
        self.version += 1

    def push_head(self, job: Job) -> None:
        """Prepend a job (Algorithm 3's dedicated-job promotion)."""
        job.state = JobState.QUEUED
        self._queue.appendleft(job)
        self.version += 1

    def push_requeue(self, job: Job, now: float) -> None:
        """Re-enqueue a failed/evicted job at the tail (retry policy).

        The job's *effective arrival* becomes ``now``, so FIFO ordering
        by effective arrival is preserved: every later push happens at
        a simulation time ``>= now``.  The skip count resets — a
        restarted job starts a fresh Delayed-LOS skip budget.
        """
        if self._queue and now < self._queue[-1].effective_arrival():
            raise ValueError(
                f"job {job.job_id} requeued at t={now} before queue tail "
                f"(arr={self._queue[-1].effective_arrival()})"
            )
        job.requeued_at = now
        job.scount = 0
        job.state = JobState.QUEUED
        self._queue.append(job)
        self.version += 1

    def pop_head(self) -> Job:
        """Remove and return ``w_1^b``.

        Raises:
            IndexError: when the queue is empty.
        """
        job = self._queue.popleft()
        self.version += 1
        return job

    def remove(self, job: Job) -> None:
        """Remove a specific job (selected mid-queue by the DP).

        Raises:
            ValueError: when the job is not queued.
        """
        for index, queued in enumerate(self._queue):
            if queued.job_id == job.job_id:
                del self._queue[index]
                self.version += 1
                return
        raise ValueError(f"job {job.job_id} is not in the batch queue")

    def remove_all(self, jobs: List[Job]) -> None:
        """Remove a selected set ``S`` (order-independent)."""
        for job in jobs:
            self.remove(job)

    # ------------------------------------------------------------------
    def check_invariants(self, allow_promoted_head: bool = True) -> None:
        """Assert FIFO ordering (property tests).

        ``allow_promoted_head`` tolerates a *prefix* of promoted
        dedicated jobs: Algorithm 3 pushes each due dedicated job to
        the head, and since ordinary arrivals append at the tail, all
        still-waiting promoted jobs always occupy a contiguous prefix
        (in reverse promotion order).  The batch suffix behind them
        must be FIFO by *effective arrival* — requeued jobs (fault
        recovery) re-enter at the tail with their requeue instant as
        the ordering key, and an evicted dedicated job rejoins as an
        ordinary batch-tail citizen rather than a promoted head.
        """
        jobs = list(self._queue)
        start = 0
        if allow_promoted_head:
            while start < len(jobs) and jobs[start].is_dedicated:
                start += 1
        for earlier, later in zip(jobs[start:], jobs[start + 1 :]):
            assert (
                not later.is_dedicated
                or later.requeued_at is not None
                or not allow_promoted_head
            ), f"promoted dedicated job {later.job_id} outside the queue prefix"
            assert earlier.effective_arrival() <= later.effective_arrival(), (
                f"FIFO violation: {earlier.job_id} (arr={earlier.effective_arrival()}) "
                f"before {later.job_id} (arr={later.effective_arrival()})"
            )


__all__ = ["BatchQueue"]
