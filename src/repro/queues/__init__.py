"""The paper's three scheduler-visible collections (Notations box).

- :class:`~repro.queues.batch_queue.BatchQueue` — ``W^b``, a FIFO
  queue of waiting batch jobs ordered by arrival,
- :class:`~repro.queues.dedicated_queue.DedicatedQueue` — ``W^d``, a
  list of waiting dedicated jobs sorted by requested start time,
- :class:`~repro.queues.active_list.ActiveList` — ``A``, running jobs
  sorted by increasing residual execution time.

Each class enforces its ordering invariant on every mutation so the
schedulers can rely on the sortedness the paper's algorithms index
into (``a_s.res``, ``w_1^d.start`` etc.).
"""

from repro.queues.active_list import ActiveList
from repro.queues.batch_queue import BatchQueue
from repro.queues.dedicated_queue import DedicatedQueue

__all__ = ["ActiveList", "BatchQueue", "DedicatedQueue"]
