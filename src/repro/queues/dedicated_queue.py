"""``W^d`` — waiting dedicated (interactive) jobs.

Invariant (Notations box): sorted by increasing requested start time,
``w_1.start <= w_2.start <= ... <= w_D.start``.  Ties broken by
submission then id so the order is total and deterministic.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional

from repro.workload.job import Job, JobState


def _key(job: Job) -> tuple:
    assert job.requested_start is not None
    return (job.requested_start, job.submit, job.job_id)


class DedicatedQueue:
    """Sorted list of waiting dedicated jobs."""

    def __init__(self) -> None:
        self._jobs: List[Job] = []
        #: Monotonic mutation counter (push/pop/remove bump it); feeds
        #: the runner's cycle-elision fingerprint.  A plain attribute,
        #: not a property — read on every scheduling event.  Callers
        #: must never write it.
        self.version = 0
        # (version, group) pair behind cohead_group(); membership can
        # only change through push/pop/remove, all of which bump the
        # version, so a version match proves the cached prefix is
        # current.  Invalidation is implicit — no hook needed.
        self._cohead_cache: Optional[tuple] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs)

    def __bool__(self) -> bool:
        return bool(self._jobs)

    @property
    def head(self) -> Optional[Job]:
        """``w_1^d`` — the earliest requested start (None when empty)."""
        return self._jobs[0] if self._jobs else None

    def jobs(self) -> List[Job]:
        """Snapshot in start-time order."""
        return list(self._jobs)

    # ------------------------------------------------------------------
    def push(self, job: Job) -> None:
        """Insert a dedicated job at its sorted position.

        Raises:
            ValueError: for non-dedicated jobs.
        """
        if not job.is_dedicated:
            raise ValueError(f"job {job.job_id} is not dedicated")
        job.state = JobState.QUEUED
        index = bisect.bisect_right(self._jobs, _key(job), key=_key)
        self._jobs.insert(index, job)
        self.version += 1

    def pop_head(self) -> Job:
        """Remove and return ``w_1^d``.

        Raises:
            IndexError: when empty.
        """
        job = self._jobs.pop(0)
        self.version += 1
        return job

    def remove(self, job: Job) -> None:
        """Remove a specific dedicated job.

        Raises:
            ValueError: when absent.
        """
        for index, queued in enumerate(self._jobs):
            if queued.job_id == job.job_id:
                del self._jobs[index]
                self.version += 1
                return
        raise ValueError(f"job {job.job_id} is not in the dedicated queue")

    # ------------------------------------------------------------------
    def due(self, now: float) -> List[Job]:
        """Jobs whose requested start time has been reached.

        The queue is sorted by requested start, so the due jobs are
        exactly a prefix — the walk stops at the first future start.
        """
        out: List[Job] = []
        for job in self._jobs:
            if job.requested_start is None or job.requested_start > now:
                break
            out.append(job)
        return out

    def cohead_group(self) -> List[Job]:
        """All queued dedicated jobs sharing the head's start time.

        This is the set Algorithm 2 sums as ``tot_start_num``
        (lines 16–17): dedicated jobs with *identical* start times must
        be reserved together.  Sorted order makes the group a prefix,
        so the walk stops at the first different start.

        The result is cached per queue version (``dedicated_freeze``
        asks every Hybrid-LOS cycle, the queue changes rarely) and
        must be treated as read-only by callers.
        """
        cached = self._cohead_cache
        if cached is not None and cached[0] == self.version:
            return cached[1]
        group: List[Job] = []
        if self._jobs:
            head_start = self._jobs[0].requested_start
            for job in self._jobs:
                if job.requested_start != head_start:
                    break
                group.append(job)
        self._cohead_cache = (self.version, group)
        return group

    def check_invariants(self) -> None:
        """Assert start-time ordering (property tests)."""
        for earlier, later in zip(self._jobs, self._jobs[1:]):
            assert _key(earlier) <= _key(later), (
                f"dedicated ordering violation: {earlier.job_id} before {later.job_id}"
            )
        for job in self._jobs:
            assert job.is_dedicated, f"batch job {job.job_id} in dedicated queue"


__all__ = ["DedicatedQueue"]
