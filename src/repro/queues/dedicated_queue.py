"""``W^d`` — waiting dedicated (interactive) jobs.

Invariant (Notations box): sorted by increasing requested start time,
``w_1.start <= w_2.start <= ... <= w_D.start``.  Ties broken by
submission then id so the order is total and deterministic.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional

from repro.workload.job import Job, JobState


def _key(job: Job) -> tuple:
    assert job.requested_start is not None
    return (job.requested_start, job.submit, job.job_id)


class DedicatedQueue:
    """Sorted list of waiting dedicated jobs."""

    def __init__(self) -> None:
        self._jobs: List[Job] = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs)

    def __bool__(self) -> bool:
        return bool(self._jobs)

    @property
    def head(self) -> Optional[Job]:
        """``w_1^d`` — the earliest requested start (None when empty)."""
        return self._jobs[0] if self._jobs else None

    def jobs(self) -> List[Job]:
        """Snapshot in start-time order."""
        return list(self._jobs)

    # ------------------------------------------------------------------
    def push(self, job: Job) -> None:
        """Insert a dedicated job at its sorted position.

        Raises:
            ValueError: for non-dedicated jobs.
        """
        if not job.is_dedicated:
            raise ValueError(f"job {job.job_id} is not dedicated")
        job.state = JobState.QUEUED
        keys = [_key(j) for j in self._jobs]
        index = bisect.bisect_right(keys, _key(job))
        self._jobs.insert(index, job)

    def pop_head(self) -> Job:
        """Remove and return ``w_1^d``.

        Raises:
            IndexError: when empty.
        """
        return self._jobs.pop(0)

    def remove(self, job: Job) -> None:
        """Remove a specific dedicated job.

        Raises:
            ValueError: when absent.
        """
        for index, queued in enumerate(self._jobs):
            if queued.job_id == job.job_id:
                del self._jobs[index]
                return
        raise ValueError(f"job {job.job_id} is not in the dedicated queue")

    # ------------------------------------------------------------------
    def due(self, now: float) -> List[Job]:
        """Jobs whose requested start time has been reached."""
        return [j for j in self._jobs if j.requested_start is not None and j.requested_start <= now]

    def cohead_group(self) -> List[Job]:
        """All queued dedicated jobs sharing the head's start time.

        This is the set Algorithm 2 sums as ``tot_start_num``
        (lines 16–17): dedicated jobs with *identical* start times must
        be reserved together.
        """
        if not self._jobs:
            return []
        head_start = self._jobs[0].requested_start
        return [j for j in self._jobs if j.requested_start == head_start]

    def check_invariants(self) -> None:
        """Assert start-time ordering (property tests)."""
        for earlier, later in zip(self._jobs, self._jobs[1:]):
            assert _key(earlier) <= _key(later), (
                f"dedicated ordering violation: {earlier.job_id} before {later.job_id}"
            )
        for job in self._jobs:
            assert job.is_dedicated, f"batch job {job.job_id} in dedicated queue"


__all__ = ["DedicatedQueue"]
