"""``A`` — the sorted list of active (running) jobs.

Invariant (Notations box): sorted by increasing residual execution
time ``a_1.res <= ... <= a_A.res``.  Residuals of running jobs all
shrink at the same rate, so ordering by the absolute *kill-by* time
(``start + estimate``) is equivalent and stable between events — until
an ECC changes a kill-by time, which is why :meth:`resort` exists and
is called by the ECC processor after every applied command.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional

from repro.workload.job import Job, JobState


class ActiveList:
    """Running jobs ordered by kill-by time (equivalently, residual)."""

    def __init__(self) -> None:
        self._jobs: List[Job] = []

    # ------------------------------------------------------------------
    def _key(self, job: Job) -> tuple:
        return (job.kill_by(), job.job_id)

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs)

    def __bool__(self) -> bool:
        return bool(self._jobs)

    def __getitem__(self, index: int) -> Job:
        return self._jobs[index]

    def jobs(self) -> List[Job]:
        """Snapshot in increasing-residual order."""
        return list(self._jobs)

    @property
    def total_used(self) -> int:
        """Processors held by running jobs (``Σ a_i.num``)."""
        return sum(job.num for job in self._jobs)

    def residuals(self, now: float) -> List[float]:
        """Residual runtimes at ``now``, in list order (non-decreasing)."""
        return [job.residual(now) for job in self._jobs]

    def last(self) -> Optional[Job]:
        """``a_A`` — the longest-residual job (None when idle)."""
        return self._jobs[-1] if self._jobs else None

    # ------------------------------------------------------------------
    def add(self, job: Job) -> None:
        """Insert a newly started job at its sorted position.

        Requires the job to be started (``start_time`` set) so the
        kill-by key exists; flips state to RUNNING.
        """
        if job.start_time is None:
            raise ValueError(f"job {job.job_id} has no start time")
        job.state = JobState.RUNNING
        keys = [self._key(j) for j in self._jobs]
        index = bisect.bisect_right(keys, self._key(job))
        self._jobs.insert(index, job)

    def remove(self, job: Job) -> None:
        """Remove a finishing job.

        Raises:
            ValueError: when the job is not active.
        """
        for index, active in enumerate(self._jobs):
            if active.job_id == job.job_id:
                del self._jobs[index]
                return
        raise ValueError(f"job {job.job_id} is not active")

    def resort(self) -> None:
        """Re-establish ordering after kill-by times changed (ECCs)."""
        self._jobs.sort(key=self._key)

    # ------------------------------------------------------------------
    def check_invariants(self, now: Optional[float] = None) -> None:
        """Assert ordering and state invariants (property tests)."""
        keys = [self._key(j) for j in self._jobs]
        assert keys == sorted(keys), "active list out of residual order"
        for job in self._jobs:
            assert job.state is JobState.RUNNING, (job.job_id, job.state)
            if now is not None:
                assert job.start_time is not None and job.start_time <= now


__all__ = ["ActiveList"]
