"""``A`` — the sorted list of active (running) jobs.

Invariant (Notations box): sorted by increasing residual execution
time ``a_1.res <= ... <= a_A.res``.  Residuals of running jobs all
shrink at the same rate, so ordering by the absolute *kill-by* time
(``start + estimate``) is equivalent and stable between events — until
an ECC changes a kill-by time, which is why :meth:`resort` exists and
is called by the ECC processor after every applied command.

Alongside the ordering, the list maintains two derived quantities
incrementally so the scheduling hot path never re-scans it:

- ``total_used`` — the processor sum ``Σ a_i.num``, updated O(1) on
  add/remove (``ctx.free`` reads it every scheduler pass);
- the aggregated *release breakpoints* — sorted ``(kill_by, Σ num)``
  steps feeding :meth:`repro.core.profile.CapacityProfile.from_active`
  — updated by bisect on add/remove, with a dirty flag forcing a full
  rebuild after :meth:`resort` (an ECC moved a kill-by time we no
  longer know).  Full rebuilds are counted by the ``profile_rebuilds``
  telemetry counter.

``version`` increments on every mutation; the runner folds it into its
cycle-elision fingerprint so any active-set change invalidates elision
in O(1) (docs/performance.md).
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple

from repro.obs.spans import begin as _span_begin, end as _span_end
from repro.obs.telemetry import bump
from repro.workload.job import Job, JobState


class ActiveList:
    """Running jobs ordered by kill-by time (equivalently, residual)."""

    def __init__(self) -> None:
        self._jobs: List[Job] = []
        # Parallel sort keys for self._jobs: bisecting a plain tuple
        # list never calls back into Python per comparison, unlike
        # bisect(..., key=self._key) (job starts are a hot path).
        self._keys: List[tuple] = []
        #: Processors held by running jobs (``Σ a_i.num``), maintained
        #: O(1) on add/remove.  A plain attribute, not a property —
        #: ``ctx.free`` reads it every scheduler pass.  Callers must
        #: never write it.
        self.total_used = 0
        #: Monotonic mutation counter (add/remove/resort each bump it);
        #: feeds the runner's cycle-elision fingerprint.  A plain
        #: attribute, not a property — read on every scheduling event.
        #: Callers must never write it.
        self.version = 0
        # Aggregated releases: sorted unique kill-by times and the
        # processors freed at each.  Maintained incrementally while
        # clean; `_releases_dirty` means kill-by times moved under us
        # (ECC) and the next reader must rebuild.
        self._release_times: List[float] = []
        self._release_nums: List[int] = []
        self._releases_dirty = False

    # ------------------------------------------------------------------
    def _key(self, job: Job) -> tuple:
        return (job.kill_by(), job.job_id)

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs)

    def __bool__(self) -> bool:
        return bool(self._jobs)

    def __getitem__(self, index: int) -> Job:
        return self._jobs[index]

    def jobs(self) -> List[Job]:
        """Snapshot in increasing-residual order."""
        return list(self._jobs)

    def residuals(self, now: float) -> List[float]:
        """Residual runtimes at ``now``, in list order (non-decreasing)."""
        return [job.residual(now) for job in self._jobs]

    def last(self) -> Optional[Job]:
        """``a_A`` — the longest-residual job (None when idle)."""
        return self._jobs[-1] if self._jobs else None

    # ------------------------------------------------------------------
    def add(self, job: Job) -> None:
        """Insert a newly started job at its sorted position.

        Requires the job to be started (``start_time`` set) so the
        kill-by key exists; flips state to RUNNING.
        """
        if job.start_time is None:
            raise ValueError(f"job {job.job_id} has no start time")
        job.state = JobState.RUNNING
        kill_by = job.start_time + job.estimate
        key = (kill_by, job.job_id)
        index = bisect.bisect_right(self._keys, key)
        self._jobs.insert(index, job)
        self._keys.insert(index, key)
        self.total_used += job.num
        self.version += 1
        if not self._releases_dirty:
            self._shift_release(kill_by, job.num)

    def remove(self, job: Job) -> None:
        """Remove a finishing job.

        Raises:
            ValueError: when the job is not active.
        """
        job_id = job.job_id
        index: Optional[int] = None
        if job.start_time is not None:
            # Fast path: the sorted key list locates a running job by
            # bisect.  A job whose kill-by moved without resort() (no
            # such caller exists today) would miss; fall back to the
            # scan rather than mis-remove.
            key = (job.start_time + job.estimate, job_id)
            found = bisect.bisect_left(self._keys, key)
            if found < len(self._keys) and self._keys[found] == key:
                index = found
        if index is None or self._jobs[index].job_id != job_id:
            index = None
            for position, active in enumerate(self._jobs):
                if active.job_id == job_id:
                    index = position
                    break
            if index is None:
                raise ValueError(f"job {job.job_id} is not active")
        active = self._jobs[index]
        del self._jobs[index]
        kill_by = self._keys[index][0]
        del self._keys[index]
        self.total_used -= active.num
        self.version += 1
        if not self._releases_dirty:
            self._shift_release(kill_by, -active.num)

    def note_resize(self, delta: int) -> None:
        """Account a running job's processor-count change (EP/RP resize).

        The caller mutated ``job.num`` in place (through the ECC
        processor), so only the aggregate needs patching here; call
        :meth:`resort` afterwards when the resize also moved the job's
        kill-by time (work-conserving resizes always do).
        """
        self.total_used += delta
        self.version += 1
        self._releases_dirty = True

    def resort(self) -> None:
        """Re-establish ordering after kill-by times changed (ECCs).

        The old kill-by times are gone, so the aggregated releases can
        no longer be patched in place — mark them dirty and let the
        next :meth:`release_breakpoints` rebuild.
        """
        self._jobs.sort(key=self._key)
        self._keys = [self._key(job) for job in self._jobs]
        self.version += 1
        self._releases_dirty = True

    # ------------------------------------------------------------------
    def _shift_release(self, time: float, delta: int) -> None:
        """Add ``delta`` processors to the release step at ``time``."""
        times = self._release_times
        index = bisect.bisect_left(times, time)
        if index < len(times) and times[index] == time:
            self._release_nums[index] += delta
            if self._release_nums[index] == 0:
                del times[index]
                del self._release_nums[index]
        elif delta > 0:
            times.insert(index, time)
            self._release_nums.insert(index, delta)
        else:
            # Removing a step we never recorded: only reachable if a
            # kill-by moved without resort() — fall back to a rebuild.
            self._releases_dirty = True

    def _rebuild_releases(self) -> None:
        token = _span_begin("profile_rebuild")
        try:
            releases: dict[float, int] = {}
            for job in self._jobs:
                kill_by = job.kill_by()
                releases[kill_by] = releases.get(kill_by, 0) + job.num
            self._release_times = sorted(releases)
            self._release_nums = [releases[time] for time in self._release_times]
            self._releases_dirty = False
            bump("profile_rebuilds")
        finally:
            _span_end(token)

    def release_breakpoints(self, rebuild: bool = False) -> Tuple[List[float], List[int]]:
        """Aggregated ``(kill-by times, processors released)`` steps.

        Sorted ascending, one entry per distinct kill-by time.  Served
        from the incrementally-maintained structure; rebuilt from the
        job list (and counted as a ``profile_rebuilds``) when dirty or
        when the caller forces it (``REPRO_NO_MEMO``).  Callers must
        not mutate the returned lists.
        """
        if rebuild or self._releases_dirty:
            self._rebuild_releases()
        return self._release_times, self._release_nums

    def used_at(self, time: float, rebuild: bool = False) -> int:
        """Processors held by jobs still scheduled to run at ``time``.

        ``Σ a_i.num`` over jobs with ``kill_by >= time`` — a bisect over
        the aggregated release steps plus a short tail sum, instead of
        a full scan of the active list (the dedicated-freeze hot path).
        ``rebuild`` forces the from-scratch path like
        :meth:`release_breakpoints` (``REPRO_NO_MEMO``).
        """
        if rebuild or self._releases_dirty:
            self._rebuild_releases()
        index = bisect.bisect_left(self._release_times, time)
        return sum(self._release_nums[index:])

    # ------------------------------------------------------------------
    def check_invariants(self, now: Optional[float] = None) -> None:
        """Assert ordering, state and derived-quantity invariants."""
        keys = [self._key(j) for j in self._jobs]
        assert keys == sorted(keys), "active list out of residual order"
        assert keys == self._keys, "parallel key list drifted"
        assert self.total_used == sum(job.num for job in self._jobs)
        if not self._releases_dirty:
            expected: dict[float, int] = {}
            for job in self._jobs:
                kill_by = job.kill_by()
                expected[kill_by] = expected.get(kill_by, 0) + job.num
            assert self._release_times == sorted(expected), "release times drifted"
            assert self._release_nums == [
                expected[time] for time in self._release_times
            ], "release sums drifted"
        for job in self._jobs:
            assert job.state is JobState.RUNNING, (job.job_id, job.state)
            if now is not None:
                assert job.start_time is not None and job.start_time <= now


__all__ = ["ActiveList"]
